"""Pure-python kernel backend: interned-bitmask implementations.

This is the bitset rewrite's code, moved here verbatim from
``preprocess/dominated.py``, ``setcover/greedy.py``, and
``setcover/bucket_greedy.py`` (which remain as delegating shims), plus
the bound-pruned rewrite of the min-cover subset DP that previously
lived in ``core/mincover.py``.

min-cover DP bound, in brief (docs/algorithms.md §11 has the full
derivation): with ``cheapest[b]`` the lightest candidate covering bit
``b``, the heuristic ``h(mask) = max over missing bits b of
cheapest[b]`` is an admissible *and consistent* lower bound on the cost
of finishing a partial cover ``mask`` — any completion must cover every
missing bit ``b`` with some candidate weighing at least ``cheapest[b]``,
and for a transition adding candidate ``(s, w)``, every bit of ``s`` has
``cheapest ≤ w``, so ``h(mask) ≤ max(h(mask|s), w) ≤ w + h(mask|s)``.
Expansions with ``dp_cost[mask] + h(mask) > incumbent`` are skipped.
Consistency makes the skip *bit-identical*, not merely cost-identical:
every update that wins or ties a surviving entry comes from a state with
``dp_cost + h ≤ opt`` (never pruned, relative order unchanged), while
updates from pruned states satisfy ``new_cost + h(target) > opt`` and so
can neither win nor tie any entry on the final backtrack path.  Negative
weights would break admissibility, so they disable pruning entirely.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.bitspace import MaskCost, PropertySpace, mask_union, popcount
from repro.core.costs import OverlayCost
from repro.core.kernels.api import (
    FORCED_COVER_MAX_CANDIDATES,
    FORCED_COVER_MAX_LENGTH,
    FORCED_COVER_NODE_BUDGET,
    FULL_ENUMERATION_MAX_LENGTH,
    MinCoverOutcome,
)
from repro.core.mincover import enumerate_covers_local
from repro.core.properties import Classifier, Query
from repro.exceptions import InvalidInstanceError, SolverError
from repro.setcover.instance import WSCInstance, WSCSolution


class DominatedPruner:
    """Stateful step-3 pass over one property-disjoint component.

    Preprocessing step 3 (Observation 3.3): remove classifiers whose
    covering contribution is subsumed by a set of shorter classifiers of
    at most the same cost.  Iterates classifiers by increasing length;
    for each classifier ``S`` it evaluates decompositions into two
    classifiers whose union is ``S`` (Algorithm 1, line 8), pricing
    previously removed (or never-available) parts by their own cheapest
    decomposition — the *effective weight* memo.  After a pass, queries
    left with a single irredundant cover get that cover *selected*
    (line 10) and the pass repeats for classifiers intersecting the
    selections (line 11).

    State mutations that the effective-weight sweep depends on go
    through the ``_set_effective`` / ``_drop_effective`` /
    ``_apply_remove`` / ``_apply_select`` hooks so array-oriented
    subclasses can mirror them into vectorized storage without touching
    the control flow (which is what makes the decisions bit-identical).
    """

    def __init__(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ):
        self.queries = list(queries)
        self.overlay = overlay
        self.max_classifier_length = max_classifier_length
        # The component's property universe, interned once; every hot
        # structure below is keyed by mask, not frozenset.
        self.space = PropertySpace.from_queries(self.queries)
        self._cost = MaskCost(self.space, overlay)
        self._query_masks = [self.space.mask_of(q) for q in self.queries]
        # Effective weight: cheapest way to obtain S's covering power from
        # shorter classifiers (or S itself).
        self._effective: Dict[int, float] = {}
        self.removed: Set[Classifier] = set()
        self._removed_masks: Set[int] = set()
        self.forced: List[Classifier] = []
        self._universe_cache: Optional[List[int]] = None
        # Decomposition pairs per classifier never change (only their
        # costs do), so they are materialised once and reused across the
        # fixpoint re-passes.
        self._decomposition_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}

    # -- mutation hooks (overridden by array subclasses) ---------------

    def _set_effective(self, mask: int, value: float) -> None:
        self._effective[mask] = value

    def _drop_effective(self, mask: int) -> None:
        self._effective.pop(mask, None)

    def _apply_remove(self, mask: int) -> None:
        self._cost.remove(mask)

    def _apply_select(self, mask: int) -> None:
        self._cost.select(mask)

    # ------------------------------------------------------------------

    def _universe(self) -> List[int]:
        """All candidate classifier masks of the component, by increasing
        length then label, deduplicated.  Computed once — removals are
        tracked separately and never shrink this list."""
        if self._universe_cache is None:
            seen: Set[int] = set()
            ordered: List[int] = []
            for qmask in self._query_masks:
                for mask in self.space.iter_subset_masks(
                    qmask, self.max_classifier_length
                ):
                    if mask not in seen:
                        seen.add(mask)
                        ordered.append(mask)
            # Stable sort by length keeps the deterministic per-query
            # enumeration order within each length class.
            ordered.sort(key=popcount)
            self._universe_cache = ordered
        return self._universe_cache

    def effective_weight(self, clf: Classifier) -> float:
        """Weight of ``clf`` or of its cheapest recorded decomposition."""
        mask = self.space.mask_of(clf)
        memo = self._effective.get(mask)
        direct = self._cost.cost(mask)
        if memo is None:
            return direct
        return min(memo, direct)

    def _decompositions(self, mask: int) -> Tuple[Tuple[int, int], ...]:
        cached = self._decomposition_cache.get(mask)
        if cached is not None:
            return cached
        length = popcount(mask)
        if length == 2:
            # The only pair of proper submasks with union XY is (X, Y).
            low = mask & -mask
            pairs: Tuple[Tuple[int, int], ...] = ((low, mask ^ low),)
        elif length <= FULL_ENUMERATION_MAX_LENGTH:
            pairs = tuple(self.space.iter_two_cover_masks(mask))
        else:
            pairs = tuple(self.space.iter_two_partition_masks(mask))
        self._decomposition_cache[mask] = pairs
        return pairs

    def _cheapest_decomposition(self, mask: int) -> float:
        best = math.inf
        memo = self._effective
        cost = self._cost.cost
        for part_a, part_b in self._decompositions(mask):
            # Inlined effective_weight: min(memoised decomposition, direct).
            weight = cost(part_a)
            cached = memo.get(part_a)
            if cached is not None and cached < weight:
                weight = cached
            direct_b = cost(part_b)
            cached_b = memo.get(part_b)
            if cached_b is not None and cached_b < direct_b:
                direct_b = cached_b
            weight += direct_b
            if weight < best:
                best = weight
        return best

    # ------------------------------------------------------------------

    def _pass_remove(self, targets: Optional[Iterable[int]] = None) -> int:
        """One removal sweep; returns the number of removals.

        Classifiers are processed by increasing length so shorter parts'
        effective weights are final before longer classifiers consult
        them; within a length the order is irrelevant (decompositions use
        strictly shorter classifiers only).
        """
        if targets is None:
            universe = self._universe()
        else:
            universe = sorted(set(targets), key=popcount)
        removed_count = 0
        cost = self._cost.cost
        removed_masks = self._removed_masks
        for mask in universe:
            length = popcount(mask)
            if length < 2 or mask in removed_masks:
                continue
            if length == 2:
                # Inlined fast path: the only decomposition is (X, Y), and
                # singletons are never removed by this step, so their
                # effective weight is just their overlay weight.
                low = mask & -mask
                decomposition_cost = cost(low) + cost(mask ^ low)
            else:
                decomposition_cost = self._cheapest_decomposition(mask)
            direct = cost(mask)
            self._set_effective(mask, min(direct, decomposition_cost))
            if math.isfinite(direct) and decomposition_cost <= direct:
                self._apply_remove(mask)
                removed_masks.add(mask)
                self.removed.add(self.space.set_of(mask))
                removed_count += 1
        return removed_count

    def _available_candidates(self, qmask: int) -> List[Tuple[int, float]]:
        cost = self._cost.cost
        pairs = []
        for mask in self.space.iter_subset_masks(qmask, self.max_classifier_length):
            weight = cost(mask)
            if math.isfinite(weight):
                pairs.append((mask, weight))
        return pairs

    def _detect_forced_covers(self, uncovered: Sequence[int]) -> List[int]:
        """Queries with a single irredundant cover force its classifiers
        (Algorithm 1, line 10).  Takes and returns masks."""
        newly_forced: List[int] = []
        for qmask in uncovered:
            length = popcount(qmask)
            if length > FORCED_COVER_MAX_LENGTH:
                continue
            if length == 2:
                unique = self._unique_cover_k2(qmask)
            else:
                candidates = self._available_candidates(qmask)
                if len(candidates) > FORCED_COVER_MAX_CANDIDATES:
                    continue
                unique = self._unique_cover(qmask, candidates)
            if unique is not None:
                for mask in unique:
                    if self._cost.cost(mask) > 0:
                        self._apply_select(mask)
                        newly_forced.append(mask)
        return newly_forced

    def _unique_cover(
        self, qmask: int, candidates: List[Tuple[int, float]]
    ) -> Optional[Tuple[int, ...]]:
        """Mask-level uniqueness test via the irredundant-cover search.

        Candidate masks are compressed to query-local bits (ascending
        component bits → ascending local bits) so the search order, and
        therefore the budget-exhaustion behaviour, matches the
        frozenset-era enumeration exactly.
        """
        bits = self.space.bits_of(qmask)
        local_of = {bit: i for i, bit in enumerate(bits)}
        full = (1 << len(bits)) - 1
        usable: List[Tuple[int, float]] = []
        for mask, weight in candidates:
            local = 0
            sub = mask
            while sub:
                low = sub & -sub
                local |= 1 << local_of[low.bit_length() - 1]
                sub ^= low
            usable.append((local, weight))
        covers, exhausted = enumerate_covers_local(
            full, usable, limit=2, node_budget=FORCED_COVER_NODE_BUDGET
        )
        if exhausted or len(covers) != 1:
            return None
        picked, _cost = covers[0]
        return tuple(candidates[idx][0] for idx in picked)

    def _unique_cover_k2(self, qmask: int) -> Optional[Tuple[int, ...]]:
        """Closed form of the uniqueness test for length-2 queries: the
        only irredundant covers are {XY} and {X, Y}."""
        singleton_x = qmask & -qmask
        singleton_y = qmask ^ singleton_x
        cost = self._cost.cost
        pair_ok = math.isfinite(cost(qmask))
        singles_ok = math.isfinite(cost(singleton_x)) and math.isfinite(
            cost(singleton_y)
        )
        if pair_ok and not singles_ok:
            return (qmask,)
        if singles_ok and not pair_ok:
            return (singleton_x, singleton_y)
        return None

    # ------------------------------------------------------------------

    def run(self, uncovered: Sequence[Query]) -> Tuple[int, List[Classifier]]:
        """Run removal + forced-cover detection to a fixpoint.

        Returns ``(total removals, forced classifiers)``.  Per the paper,
        re-passes only re-examine classifiers that intersect a selection
        (weights only ever drop to 0 on selection), and re-detection only
        re-examines queries touching the affected properties — the rest
        cannot have changed.
        """
        space = self.space
        uncovered_masks = [space.mask_of(q) for q in uncovered]
        queries_by_bit: Dict[int, List[int]] = {}
        for qmask in uncovered_masks:
            for bit in space.bits_of(qmask):
                queries_by_bit.setdefault(bit, []).append(qmask)
        alive: Dict[int, None] = dict.fromkeys(uncovered_masks)

        total_removed = self._pass_remove()
        pending: Sequence[int] = list(alive)
        while True:
            forced_now = self._detect_forced_covers(pending)
            if not forced_now:
                break
            self.forced.extend(space.set_of(mask) for mask in forced_now)
            affected_mask = mask_union(forced_now)
            # Queries sharing a property with the selections are the only
            # ones whose cover options changed; of those, the ones the
            # selections fully covered leave the game entirely.
            affected: List[int] = []
            seen_affected: Set[int] = set()
            for bit in space.bits_of(affected_mask):
                for qmask in queries_by_bit.get(bit, ()):
                    if qmask in alive and qmask not in seen_affected:
                        seen_affected.add(qmask)
                        affected.append(qmask)
            still_uncovered: List[int] = []
            for qmask in affected:
                if self._covered_by_selected(qmask):
                    del alive[qmask]
                else:
                    still_uncovered.append(qmask)
            # Re-examine only classifiers of still-uncovered queries:
            # removals among covered queries' classifiers can never
            # influence the residual problem.
            touched: Set[int] = set()
            for qmask in still_uncovered:
                for mask in space.iter_subset_masks(
                    qmask, self.max_classifier_length
                ):
                    if mask & affected_mask and mask not in self._removed_masks:
                        touched.add(mask)
                        # Invalidate memo so the zeroed selections are seen.
                        self._drop_effective(mask)
            total_removed += self._pass_remove(touched)
            pending = still_uncovered
        return total_removed, self.forced

    def _covered_by_selected(self, qmask: int) -> bool:
        """Whether zero-weight (selected) classifiers already cover the
        query."""
        remaining = qmask
        cost = self._cost.cost
        for mask in self.space.iter_subset_masks(qmask, self.max_classifier_length):
            if cost(mask) == 0:
                remaining &= ~mask
                if not remaining:
                    return True
        return False


def greedy_wsc(instance: WSCInstance) -> WSCSolution:
    """Chvátal's greedy WSC with a lazy-deletion priority queue.

    At each step, select the set minimising ``cost / newly-covered``
    (Theorem 2.6's ``ln Δ + 1`` factor).  The heap holds stale entries —
    an entry is trusted only if its recorded coverage count still matches
    reality, otherwise the set is re-keyed and pushed back.  Coverage
    state is a single integer bitmask over element ids.  Raises if some
    element is uncoverable.
    """
    instance.validate_coverable()

    universe_size = instance.universe_size
    member_masks = instance.member_masks()
    covered = 0
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    # uncovered_count[set_id] is maintained lazily: the authoritative value
    # is recomputed when a heap entry is popped.  Ties on ratio resolve by
    # lowest set_id (then recorded size) through the tuple ordering.
    heap: List = []
    for set_id in range(instance.num_sets):
        size = len(instance.set_members(set_id))
        if size == 0:
            # Degenerate empty set: can never cover anything; skipping it
            # here keeps the seeding total instead of dividing by zero.
            continue
        cost = instance.set_cost(set_id)
        heap.append((cost / size, set_id, size))
    heapq.heapify(heap)

    while num_covered < universe_size:
        if not heap:
            raise SolverError("greedy ran out of sets before covering the universe")
        ratio, set_id, recorded = heapq.heappop(heap)
        fresh_mask = member_masks[set_id] & ~covered
        fresh = fresh_mask.bit_count()
        if fresh == 0:
            continue
        if fresh != recorded:
            # Stale entry: re-key with the up-to-date coverage.
            cost = instance.set_cost(set_id)
            heapq.heappush(heap, (cost / fresh, set_id, fresh))
            continue
        # Entry is accurate and minimal: select the set.
        selected.append(set_id)
        total_cost += instance.set_cost(set_id)
        covered |= fresh_mask
        num_covered += fresh

    return WSCSolution(selected, total_cost)


def bucket_greedy_wsc(instance: WSCInstance, epsilon: float = 0.1) -> WSCSolution:
    """Bucketed greedy for WSC [Cormode, Karloff & Wirth, CIKM 2010].

    Sets live in geometric ratio buckets ``[(1+ε)^k, (1+ε)^{k+1})``,
    processed best to worst; a set whose recomputed ratio still falls in
    the current bucket is selected immediately, otherwise it migrates.
    ``epsilon`` trades quality for movement (``(1+ε)(ln Δ + 1)``
    guarantee).
    """
    if epsilon <= 0:
        raise InvalidInstanceError(f"epsilon must be > 0, got {epsilon}")
    instance.validate_coverable()
    base = 1.0 + epsilon
    log_base = math.log(base)

    def bucket_of(ratio: float) -> int:
        if ratio <= 0:
            return -(10**9)  # zero-cost sets: always the best bucket
        return math.floor(math.log(ratio) / log_base)

    universe_size = instance.universe_size
    member_masks = instance.member_masks()
    covered = 0
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    buckets: Dict[int, List[int]] = {}

    def push(set_id: int, ratio: float) -> None:
        key = bucket_of(ratio)
        if key not in buckets:
            buckets[key] = []
        buckets[key].append(set_id)

    for set_id in range(instance.num_sets):
        size = len(instance.set_members(set_id))
        if size == 0:
            continue  # degenerate empty set: nothing to cover, no ratio
        push(set_id, instance.set_cost(set_id) / size)

    while num_covered < universe_size:
        if not buckets:
            raise SolverError("bucket greedy ran out of sets")
        current_key = min(buckets)
        queue = buckets.pop(current_key)
        for set_id in queue:
            # One masked popcount replaces the count-then-mark scans.
            fresh_mask = member_masks[set_id] & ~covered
            fresh = fresh_mask.bit_count()
            if fresh == 0:
                continue  # fully stale: drop for good
            ratio = instance.set_cost(set_id) / fresh
            if bucket_of(ratio) > current_key:
                push(set_id, ratio)  # migrated to a worse bucket
                continue
            # Within (1+epsilon) of the best current ratio: take it.
            selected.append(set_id)
            total_cost += instance.set_cost(set_id)
            covered |= fresh_mask
            num_covered += fresh
            if num_covered == universe_size:
                break

    solution = WSCSolution(selected, total_cost)
    instance.verify_solution(solution)
    return solution


def admissible_tables(
    full: int, usable: Sequence[Tuple[int, float]]
) -> Optional[Tuple[List[float], float]]:
    """Shared pruning precomputation for the min-cover DP.

    Returns ``(h, incumbent)`` — the per-state admissible bound table
    and a feasible upper bound to seed the incumbent — or ``None`` when
    the candidate union does not reach ``full`` (the DP outcome is then
    ``None`` without touching the lattice).  When any weight is negative
    the bound is unusable; ``h`` is all-zero and the incumbent infinite,
    which turns the caller into the exhaustive sweep.
    """
    num_bits = full.bit_length()
    cheapest = [math.inf] * num_bits
    union = 0
    nonnegative = True
    for clf_mask, weight in usable:
        union |= clf_mask
        if weight < 0:
            nonnegative = False
        sub = clf_mask
        while sub:
            low = sub & -sub
            bit = low.bit_length() - 1
            if weight < cheapest[bit]:
                cheapest[bit] = weight
            sub ^= low
    if union != full:
        return None
    size = full + 1
    h = [0.0] * size
    if not nonnegative:
        return h, math.inf
    # Descending sweep: the lowest missing bit either dominates the max
    # or defers to the rest (mask | low > mask, so h there is final).
    for mask in range(full - 1, -1, -1):
        missing = full & ~mask
        low = missing & -missing
        rest = h[mask | low]
        bit_bound = cheapest[low.bit_length() - 1]
        h[mask] = bit_bound if bit_bound > rest else rest
    return h, _greedy_upper_bound(full, usable)


def _greedy_upper_bound(full: int, usable: Sequence[Tuple[int, float]]) -> float:
    """Cost of the ratio-greedy cover: a cheap feasible incumbent.

    Only seeds the DP's pruning bound and never appears in any output,
    so any feasible cover's cost is sound; the caller has already
    checked that the candidate union reaches ``full``, so every pass
    clears at least one bit.
    """
    remaining = full
    total = 0.0
    while remaining:
        best_ratio = math.inf
        best_mask = 0
        best_weight = 0.0
        for clf_mask, weight in usable:
            gain = (clf_mask & remaining).bit_count()
            if not gain:
                continue
            ratio = weight / gain
            if ratio < best_ratio:
                best_ratio = ratio
                best_mask = clf_mask
                best_weight = weight
        remaining &= ~best_mask
        total += best_weight
    return total


def sampled_gains(member_masks: Sequence[int], covered: int) -> List[int]:
    """Batch fresh-coverage counts over sample-local member masks.

    ``gains[i] = popcount(member_masks[i] & ~covered)`` — the seeding
    step of the sampling-based greedy's restricted sub-instance solve.
    Counts are exact integers, so every backend is bit-identical by
    construction.
    """
    if covered == 0:
        return [mask.bit_count() for mask in member_masks]
    uncovered = ~covered
    return [(mask & uncovered).bit_count() for mask in member_masks]


def min_cover_dp(full: int, usable: Sequence[Tuple[int, float]]) -> MinCoverOutcome:
    """Bound-pruned mask-native min-cover DP.

    Same contract, tie-breaks, and outputs as the historical exhaustive
    ``min_cover_local`` sweep: ``usable`` holds ``(mask, weight)`` pairs
    over query-local bits, the return is ``(cost, chosen indices)`` in
    selection order or ``None`` when ``full`` is unreachable, and ties
    break toward fewer sets then earliest ``usable`` order.  The only
    change is that states provably unable to beat (or tie) the incumbent
    skip their expansion — see the module docstring for why that leaves
    every surviving entry bit-identical.
    """
    if full == 0:
        return 0.0, []
    tables = admissible_tables(full, usable)
    if tables is None:
        # Some bit belongs to no candidate: full is unreachable, which
        # the exhaustive sweep would discover only after the full pass.
        return None
    h, incumbent = tables

    INF = math.inf
    size = full + 1
    dp_cost = [INF] * size
    dp_count = [0] * size
    back: List[Optional[Tuple[int, int]]] = [None] * size  # (prev_mask, usable_idx)
    dp_cost[0] = 0.0

    # Masks only ever grow when a set is added, so a single ascending pass
    # over masks relaxes every useful transition exactly once.
    for mask in range(size):
        cost_here = dp_cost[mask]
        if cost_here is INF:
            continue
        full_cost = dp_cost[full]
        if full_cost < incumbent:
            incumbent = full_cost
        if cost_here + h[mask] > incumbent:
            # No completion from here can beat or tie the incumbent, so
            # skipping the expansion cannot change any surviving entry.
            continue
        count_here = dp_count[mask]
        for idx, (clf_mask, weight) in enumerate(usable):
            nxt = mask | clf_mask
            if nxt == mask:
                continue
            new_cost = cost_here + weight
            # RPL103 suppressed below — deliberate exact tie-break: at
            # equal DP cost prefer fewer classifiers.  Both sides are
            # produced by the same left-to-right accumulation over the
            # deterministic candidate order, so equality is exact and
            # pinned by the test_determinism tie-break suite.
            if new_cost < dp_cost[nxt] or (
                new_cost == dp_cost[nxt]  # reprolint: ignore[RPL103]
                and count_here + 1 < dp_count[nxt]
            ):
                dp_cost[nxt] = new_cost
                dp_count[nxt] = count_here + 1
                back[nxt] = (mask, idx)

    if dp_cost[full] is INF:
        return None

    chosen: List[int] = []
    mask = full
    while mask:
        prev_mask, idx = back[mask]  # type: ignore[misc]
        chosen.append(idx)
        mask = prev_mask
    chosen.reverse()
    return dp_cost[full], chosen


class PyJitBackend:
    """The always-available pure-python backend."""

    name = "pyjit"

    def make_dominated_pruner(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ) -> DominatedPruner:
        return DominatedPruner(queries, overlay, max_classifier_length)

    def greedy_wsc(self, instance: WSCInstance) -> WSCSolution:
        return greedy_wsc(instance)

    def bucket_greedy_wsc(
        self, instance: WSCInstance, epsilon: float = 0.1
    ) -> WSCSolution:
        return bucket_greedy_wsc(instance, epsilon)

    def min_cover_dp(
        self, full: int, usable: Sequence[Tuple[int, float]]
    ) -> MinCoverOutcome:
        return min_cover_dp(full, usable)

    def sampled_gains(self, member_masks: Sequence[int], covered: int) -> List[int]:
        return sampled_gains(member_masks, covered)
