"""Pluggable backends for the four batch mask kernels.

Public surface: the contracts in :mod:`repro.core.kernels.api` and the
registry in :mod:`repro.core.kernels.registry`.  Implementation modules
(``pyjit``, ``array``) are internal — import them only through the
registry (reprolint RPL203).
"""

from repro.core.kernels.api import (
    FORCED_COVER_MAX_CANDIDATES,
    FORCED_COVER_MAX_LENGTH,
    FORCED_COVER_NODE_BUDGET,
    FULL_ENUMERATION_MAX_LENGTH,
    KernelBackend,
    MinCoverOutcome,
    PrunesDominated,
    describe,
)
from repro.core.kernels.registry import (
    AUTO,
    BACKEND_ENV_VAR,
    available_backends,
    backend_available,
    backend_choices,
    current_backend_name,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)

__all__ = [
    "AUTO",
    "BACKEND_ENV_VAR",
    "FORCED_COVER_MAX_CANDIDATES",
    "FORCED_COVER_MAX_LENGTH",
    "FORCED_COVER_NODE_BUDGET",
    "FULL_ENUMERATION_MAX_LENGTH",
    "KernelBackend",
    "MinCoverOutcome",
    "PrunesDominated",
    "available_backends",
    "backend_available",
    "backend_choices",
    "current_backend_name",
    "describe",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "set_default_backend",
    "use_backend",
]
