"""Exact minimum-cost cover of a *single* query (bitmask DP).

Covering one query ``q`` is a weighted set cover over at most ``k``
elements whose candidate sets are the finite-weight subsets of ``q`` —
small enough (``k`` rarely exceeds 5 in practice, Section 2.1) for an
exact ``O(2^k · |candidates|)`` dynamic program.

This primitive backs:

* the Local-Greedy baseline (Section 6.1), which repeatedly finds "the
  least costly cover ... of a single query over all queries";
* preprocessing step 3's forced-cover detection; and
* the exact solver's per-component enumeration on tiny components.

The DP and the irredundant-cover enumeration run on query-local bit
masks.  :func:`min_cover_local` / :func:`enumerate_covers_local` expose
that mask-native core directly so mask-based callers (the bitset
dominated pruner) skip the frozenset marshalling the public
:func:`min_cover` / :func:`enumerate_covers` wrappers still provide.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.kernels.registry import get_backend
from repro.core.properties import Classifier, Query
from repro.exceptions import UncoverableQueryError


class QueryCover:
    """Result of a single-query minimum cover computation."""

    __slots__ = ("query", "classifiers", "cost")

    def __init__(self, query: Query, classifiers: Tuple[Classifier, ...], cost: float):
        self.query = query
        self.classifiers = classifiers
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ", ".join("+".join(sorted(c)) for c in self.classifiers)
        return f"<QueryCover cost={self.cost} via [{labels}]>"


def min_cover_local(
    full: int,
    usable: Sequence[Tuple[int, float]],
    backend: Optional[str] = None,
) -> Optional[Tuple[float, List[int]]]:
    """Mask-native min-cover DP (shim over the kernel layer).

    ``usable`` holds ``(mask, weight)`` pairs over query-local bits
    (``full`` is the all-ones target mask); the caller guarantees masks
    are non-empty submasks of ``full`` with finite weights.  Returns
    ``(cost, chosen indices)`` — indices into ``usable`` in selection
    order — or ``None`` when ``full`` is unreachable.  Ties break toward
    fewer sets, then earliest ``usable`` order, exactly as the public
    wrapper always has; every backend's bound-pruned DP reproduces the
    historical exhaustive sweep bit for bit.  ``backend`` overrides the
    active kernel backend.
    """
    return get_backend(backend).min_cover_dp(full, usable)


def min_cover(
    q: Query,
    candidates: Iterable[Tuple[Classifier, float]],
    required: bool = True,
) -> Optional[QueryCover]:
    """Minimum-cost exact cover of query ``q``.

    Parameters
    ----------
    q:
        The query to cover.
    candidates:
        ``(classifier, weight)`` pairs.  Classifiers that are not subsets
        of ``q`` or have non-finite weight are ignored, so callers may
        pass a broader pool.
    required:
        When true (default) an uncoverable query raises
        :class:`UncoverableQueryError`; otherwise ``None`` is returned.

    Returns
    -------
    A :class:`QueryCover` whose classifiers have union exactly ``q`` and
    whose total weight is minimal, with ties broken toward fewer
    classifiers and then deterministic enumeration order.
    """
    full, usable, payload = _compress_candidates(q, candidates)
    outcome = min_cover_local(full, usable)
    if outcome is None:
        if required:
            raise UncoverableQueryError(q)
        return None
    cost, chosen = outcome
    return QueryCover(q, tuple(payload[idx] for idx in chosen), cost)


def min_cover_from_model(q: Query, instance) -> Optional[QueryCover]:
    """Convenience wrapper: candidates come from an
    :class:`~repro.core.instance.MC3Instance`."""
    pairs = ((clf, instance.weight(clf)) for clf in instance.candidates(q))
    return min_cover(q, pairs, required=False)


def enumerate_covers_local(
    full: int,
    usable: Sequence[Tuple[int, float]],
    limit: Optional[int] = None,
    node_budget: Optional[int] = None,
) -> Tuple[List[Tuple[Tuple[int, ...], float]], bool]:
    """Mask-native irredundant-cover enumeration.

    Returns ``(covers, exhausted)`` where each cover is ``(usable
    indices, total weight)`` in deterministic search order, and
    ``exhausted`` reports whether ``node_budget`` cut the search short.
    """
    results: List[Tuple[Tuple[int, ...], float]] = []
    nodes = [0]
    exhausted = [False]

    def is_irredundant(indices: List[int]) -> bool:
        for skip in range(len(indices)):
            mask = 0
            for pos, idx in enumerate(indices):
                if pos != skip:
                    mask |= usable[idx][0]
            if mask == full:
                return False
        return True

    def done() -> bool:
        if limit is not None and len(results) >= limit:
            return True
        if node_budget is not None and nodes[0] > node_budget:
            exhausted[0] = True
            return True
        return False

    def recurse(start: int, mask: int, picked: List[int]) -> None:
        nodes[0] += 1
        if done():
            return
        if mask == full:
            if is_irredundant(picked):
                cost = sum(usable[i][1] for i in picked)
                results.append((tuple(picked), cost))
            return
        for idx in range(start, len(usable)):
            if done():
                return
            clf_mask = usable[idx][0]
            if clf_mask | mask == mask:
                continue  # contributes nothing
            picked.append(idx)
            recurse(idx + 1, mask | clf_mask, picked)
            picked.pop()

    recurse(0, 0, [])
    return results, exhausted[0]


def enumerate_covers(
    q: Query,
    candidates: Sequence[Tuple[Classifier, float]],
    limit: Optional[int] = None,
    node_budget: Optional[int] = None,
) -> List[QueryCover]:
    """Enumerate minimal (irredundant) covers of ``q``.

    A cover is *irredundant* if removing any classifier leaves the query
    uncovered.  Exponential in the worst case; used by preprocessing's
    "only one cover possibility" test on small queries and by tests.

    ``limit`` stops the search after that many covers (the uniqueness
    test only needs two).  ``node_budget`` caps the search-tree size; on
    exhaustion the function returns the covers found so far *plus* a
    sentinel duplicate of the last one when at least one was found, so
    callers testing "exactly one cover" conservatively see "more than
    one" rather than a false unique.
    """
    full, usable, payload = _compress_candidates(q, candidates)
    raw, exhausted = enumerate_covers_local(full, usable, limit, node_budget)
    results = [
        QueryCover(q, tuple(payload[idx] for idx in picked), cost)
        for picked, cost in raw
    ]
    if exhausted and results:
        results.append(results[-1])
    return results


def _compress_candidates(
    q: Query, candidates: Iterable[Tuple[Classifier, float]]
) -> Tuple[int, List[Tuple[int, float]], List[Classifier]]:
    """Filter candidates to usable ones and intern them to local masks.

    Bit ``i`` is the ``i``-th property of ``q`` in sorted order, the
    same assignment :class:`~repro.core.bitspace.PropertySpace` uses, so
    enumeration orders (and with them DP tie-breaks) match the
    historical frozenset behaviour.
    """
    index: Dict[str, int] = {prop: i for i, prop in enumerate(sorted(q))}
    full = (1 << len(index)) - 1
    usable: List[Tuple[int, float]] = []
    payload: List[Classifier] = []
    for clf, weight in candidates:
        if not clf or not clf <= q or not math.isfinite(weight):
            continue
        mask = 0
        for prop in clf:
            mask |= 1 << index[prop]
        usable.append((mask, weight))
        payload.append(clf)
    return full, usable, payload
