"""Cost models: the paper's weighting function ``W : C_Q → [0, ∞)``.

The paper treats ``W`` as a total function where classifiers that are
infeasible or "not considered" get weight ``∞`` and are omitted from the
input (Section 2.1).  We mirror that with an abstract :class:`CostModel`
whose :meth:`~CostModel.cost` may return ``math.inf``.

Concrete models:

* :class:`TableCost` — an explicit mapping, missing entries cost ``∞``
  (or a configurable default, e.g. for "every classifier exists" toy
  instances).
* :class:`UniformCost` — all classifiers cost the same (the setting of
  the prior work [13] reproduced by the BestBuy dataset).
* :class:`HashCost` — a *lazy* pseudo-random cost, deterministic in
  ``(seed, classifier)``.  The synthetic dataset (Section 6.1) draws
  costs uniformly from ``[1, 50]`` for a universe of classifiers far too
  large to materialise; hashing gives every classifier a stable draw
  without storing any of them.
* :class:`CallableCost` — wrap any user function.
* :class:`ZeroedCost` — decorator granting cost 0 to classifiers built
  solely from already-known properties (Section 2.1, "we assign a cost
  of zero for any classifier testing a property ... for which a
  classifier construction is not necessary").
* :class:`LengthCappedCost` — decorator implementing the *bounded
  classifiers* regime ``k' < k`` (Section 5.3) by pricing longer
  classifiers at ``∞``.
* :class:`OverlayCost` — decorator with per-classifier overrides, used by
  preprocessing to "select" (weight 0) and "remove" (weight ``∞``)
  classifiers without copying the underlying model.
"""

from __future__ import annotations

import hashlib
import math
import struct
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, Mapping, Optional

from repro.core.properties import Classifier, PropertySet, canonical_label
from repro.exceptions import InvalidInstanceError

INFINITY = math.inf


def validate_weight(weight: float, classifier: Classifier | None = None) -> float:
    """Validate a classifier weight: a non-negative real (``inf`` allowed)."""
    if isinstance(weight, bool) or not isinstance(weight, (int, float)):
        raise InvalidInstanceError(f"classifier weight must be numeric, got {weight!r}")
    value = float(weight)
    if math.isnan(value) or value < 0:
        label = canonical_label(classifier) if classifier else "<classifier>"
        raise InvalidInstanceError(f"weight of {label} must be in [0, inf), got {weight!r}")
    return value


def parse_classifier_key(key: object) -> Classifier:
    """Normalise a cost-table key to a classifier.

    Strings are split on whitespace and ``+`` (matching
    :func:`~repro.core.properties.canonical_label`), so ``"adidas"``,
    ``"adidas juventus"`` and ``"adidas+juventus"`` all work; any other
    iterable is taken as a collection of property names.
    """
    if isinstance(key, str):
        parts = key.replace("+", " ").split()
    elif isinstance(key, frozenset):
        parts = list(key)
    else:
        parts = list(key)  # tuples, lists, sets
    clf = frozenset(str(part) for part in parts)
    if not clf:
        raise InvalidInstanceError(f"cost table key {key!r} denotes an empty classifier")
    return clf


def _weight_bytes(value: float) -> bytes:
    """Exact IEEE-754 bits; no string rounding, ``inf`` included."""
    return struct.pack("<d", float(value))


def _token_digest(*parts: bytes) -> bytes:
    """Length-prefixed digest of token parts — unambiguous concatenation."""
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(len(part).to_bytes(4, "little"))
        digest.update(part)
    return digest.digest()


class CostModel(ABC):
    """Abstract weighting function over classifiers."""

    @abstractmethod
    def cost(self, clf: Classifier) -> float:
        """Return ``W(clf)``; ``math.inf`` means the classifier is unavailable."""

    def content_token(self) -> Optional[bytes]:
        """Canonical digest of this model's pricing content, or ``None``.

        The component-solution cache (:mod:`repro.engine.cache`) keys
        entries by content: two models with equal tokens must price
        *every* classifier identically, in every process, regardless of
        ``PYTHONHASHSEED``.  Models whose content cannot be enumerated
        (opaque callables) return ``None``; the fingerprint then falls
        back to pricing each candidate classifier individually.
        """
        return None

    def is_finite(self, clf: Classifier) -> bool:
        """Whether the classifier participates in the input (finite weight)."""
        return math.isfinite(self.cost(clf))

    def total(self, classifiers: Iterable[Classifier]) -> float:
        """Sum of costs — the paper's ``W(S)``.  ``inf`` if any member is."""
        return sum(self.cost(clf) for clf in classifiers)


class TableCost(CostModel):
    """Explicit cost table; classifiers absent from the table cost ``default``.

    This is the paper's literal input representation: the weighting
    function is given as a list associating a cost with every classifier,
    with infeasible classifiers simply omitted.
    """

    def __init__(
        self,
        table: Mapping[object, float],
        default: float = INFINITY,
    ):
        self._table: Dict[Classifier, float] = {}
        for key, weight in table.items():
            clf = parse_classifier_key(key)
            self._table[clf] = validate_weight(weight, clf)
        self.default = validate_weight(default) if math.isfinite(default) else float(default)
        self._token: Optional[bytes] = None

    def cost(self, clf: Classifier) -> float:
        return self._table.get(clf, self.default)

    def content_token(self) -> Optional[bytes]:
        # The table never mutates after construction (``copy()`` builds a
        # new model), so the digest is computed once.  Entries are fed in
        # canonical-label order — insertion history must not leak in.
        if self._token is None:
            parts = [b"table", _weight_bytes(self.default)]
            for label, weight in sorted(
                (canonical_label(clf), weight) for clf, weight in self._table.items()
            ):
                parts.append(label.encode("utf-8"))
                parts.append(_weight_bytes(weight))
            self._token = _token_digest(*parts)
        return self._token

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, clf: Classifier) -> bool:
        return clf in self._table

    def items(self):
        """Iterate over explicitly priced ``(classifier, weight)`` pairs."""
        return self._table.items()

    def copy(self) -> "TableCost":
        return TableCost(dict(self._table), default=self.default)


class UniformCost(CostModel):
    """Every classifier costs ``value`` (optionally only up to a length cap)."""

    def __init__(self, value: float = 1.0, max_length: Optional[int] = None):
        self.value = validate_weight(value)
        if max_length is not None and max_length < 1:
            raise InvalidInstanceError("max_length must be >= 1")
        self.max_length = max_length

    def cost(self, clf: Classifier) -> float:
        if self.max_length is not None and len(clf) > self.max_length:
            return INFINITY
        return self.value

    def content_token(self) -> Optional[bytes]:
        return _token_digest(
            b"uniform", _weight_bytes(self.value), str(self.max_length).encode()
        )


class CallableCost(CostModel):
    """Adapt an arbitrary ``Classifier -> float`` function to a cost model.

    Opaque by construction: :meth:`content_token` stays ``None`` (the
    base default), so cache fingerprints price candidates individually.
    """

    def __init__(self, fn: Callable[[Classifier], float]):
        self._fn = fn

    def cost(self, clf: Classifier) -> float:
        value = self._fn(clf)
        if not math.isfinite(value):
            return INFINITY
        return validate_weight(value, clf)


class HashCost(CostModel):
    """Deterministic pseudo-random integer cost in ``[low, high]``.

    The draw depends only on ``(seed, classifier)`` so the exponentially
    large classifier universe of the synthetic dataset never has to be
    materialised; repeated queries for the same classifier always return
    the same cost, as required for the weighting function to be well
    defined.
    """

    def __init__(
        self,
        low: int = 1,
        high: int = 50,
        seed: int = 0,
        max_length: Optional[int] = None,
    ):
        if low < 0 or high < low:
            raise InvalidInstanceError(f"invalid cost range [{low}, {high}]")
        if max_length is not None and max_length < 1:
            raise InvalidInstanceError("max_length must be >= 1")
        self.low = int(low)
        self.high = int(high)
        self.seed = int(seed)
        self.max_length = max_length

    def cost(self, clf: Classifier) -> float:
        if self.max_length is not None and len(clf) > self.max_length:
            return INFINITY
        label = canonical_label(clf)
        digest = hashlib.blake2b(
            label.encode(),
            digest_size=8,
            salt=self.seed.to_bytes(8, "little", signed=False),
        ).digest()
        draw = int.from_bytes(digest, "little")
        span = self.high - self.low + 1
        return float(self.low + draw % span)

    def content_token(self) -> Optional[bytes]:
        return _token_digest(
            b"hash",
            str((self.low, self.high, self.seed, self.max_length)).encode(),
        )


class ZeroedCost(CostModel):
    """Grant cost 0 to classifiers composed entirely of known properties.

    Per Section 2.1, properties whose values are already recorded need no
    classifier; a classifier testing only such properties is free, but
    mixed classifiers (e.g. ``XY`` with ``x`` known and ``y`` unknown)
    keep their base cost and may still be worth building.
    """

    def __init__(self, base: CostModel, free_properties: Iterable[str]):
        self.base = base
        self.free_properties: PropertySet = frozenset(free_properties)

    def cost(self, clf: Classifier) -> float:
        if clf <= self.free_properties:
            return 0.0
        return self.base.cost(clf)

    def content_token(self) -> Optional[bytes]:
        base = self.base.content_token()
        if base is None:
            return None
        return _token_digest(
            b"zeroed", base, canonical_label(self.free_properties).encode()
        )


class LengthCappedCost(CostModel):
    """Bounded classifiers (Section 5.3): length ``> k'`` priced at ``∞``."""

    def __init__(self, base: CostModel, max_length: int):
        if max_length < 1:
            raise InvalidInstanceError("max_length must be >= 1")
        self.base = base
        self.max_length = int(max_length)

    def cost(self, clf: Classifier) -> float:
        if len(clf) > self.max_length:
            return INFINITY
        return self.base.cost(clf)

    def content_token(self) -> Optional[bytes]:
        base = self.base.content_token()
        if base is None:
            return None
        return _token_digest(b"capped", base, str(self.max_length).encode())


class OverlayCost(CostModel):
    """A cost model with mutable per-classifier overrides.

    Preprocessing models *selecting* a classifier by setting its weight to
    0 and *removing* one by setting its weight to ``∞`` (Section 3); the
    overlay keeps those edits separate from the caller's model.
    """

    def __init__(self, base: CostModel, overrides: Optional[Dict[Classifier, float]] = None):
        self.base = base
        self.overrides: Dict[Classifier, float] = dict(overrides or {})
        self._token: Optional[bytes] = None

    def cost(self, clf: Classifier) -> float:
        if clf in self.overrides:
            return self.overrides[clf]
        return self.base.cost(clf)

    def select(self, clf: Classifier) -> None:
        """Mark ``clf`` as already built (weight 0)."""
        self.overrides[clf] = 0.0
        self._token = None

    def remove(self, clf: Classifier) -> None:
        """Mark ``clf`` as unavailable (weight ``∞``)."""
        self.overrides[clf] = INFINITY
        self._token = None

    def is_removed(self, clf: Classifier) -> bool:
        return self.overrides.get(clf) == INFINITY

    def content_token(self) -> Optional[bytes]:
        # Cached between mutations: preprocessing batches all of its
        # select/remove edits before any fingerprint runs, so every
        # component of a run shares one digest.  Mutate overrides only
        # through select/remove — a direct dict write would go unseen.
        base = self.base.content_token()
        if base is None:
            return None
        if self._token is None:
            parts = [b"overlay", base]
            for label, weight in sorted(
                (canonical_label(clf), weight) for clf, weight in self.overrides.items()
            ):
                parts.append(label.encode("utf-8"))
                parts.append(_weight_bytes(weight))
            self._token = _token_digest(*parts)
        return self._token
