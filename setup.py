"""Thin setup shim.

All metadata lives in pyproject.toml; this file exists so the package
installs in fully offline environments where pip's PEP 660 editable
path is unavailable (no `wheel` package):

    python setup.py develop
"""

from setuptools import setup

setup()
