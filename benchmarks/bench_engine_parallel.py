"""Component-parallel speedup of the shared solving engine.

Preprocessing step 2 decomposes an instance into property-disjoint
components (Observation 3.2), and the engine can fan those components
over a process pool (``jobs > 1``).  This bench solves one
many-component synthetic load sequentially and with ``jobs=4`` and
checks the contract the engine promises:

* the parallel run returns the *identical* solution — same classifier
  set, same cost — as the sequential run;
* on a multi-core machine the parallel run is faster (on a single core
  only equivalence is asserted; pool overhead makes speedup impossible).

The per-stage telemetry (``details["engine"]``) is printed so the
preprocess/solve/merge split is visible with ``pytest -s``.
"""

import os
import random

import pytest

from conftest import run_once

from repro.core import MC3Instance, TableCost
from repro.core.properties import iter_nonempty_subsets
from repro.solvers import make_solver

BLOCKS = 24
QUERIES_PER_BLOCK = 8
SEED = 0
JOBS = 4


def many_component_instance(
    blocks: int = BLOCKS,
    queries_per_block: int = QUERIES_PER_BLOCK,
    seed: int = SEED,
) -> MC3Instance:
    """A load that decomposes into ``blocks`` property-disjoint
    components: each block draws its queries from a private property
    namespace, so step 2 of preprocessing must split them."""
    rng = random.Random(f"bench-engine-{seed}")
    queries = []
    costs = {}
    for block in range(blocks):
        props = [f"b{block}p{i}" for i in range(8)]
        block_queries = set()
        while len(block_queries) < queries_per_block:
            block_queries.add(frozenset(rng.sample(props, rng.randint(2, 3))))
        for q in sorted(block_queries, key=sorted):
            queries.append(q)
            for clf in iter_nonempty_subsets(q):
                key = repr(tuple(sorted(clf)))
                costs.setdefault(
                    clf, float(random.Random(key).randint(1, 50))
                )
    return MC3Instance(queries, TableCost(costs), name="bench-engine-parallel")


@pytest.fixture(scope="module")
def instance():
    return many_component_instance()


@pytest.fixture(scope="module")
def shared():
    return {}


def test_sequential_baseline(benchmark, instance, shared):
    solver = make_solver("mc3-general", jobs=1)
    result = run_once(benchmark, lambda: solver.solve(instance))
    shared["sequential"] = result
    engine = result.details["engine"]
    print(
        f"\n[jobs=1] cost={result.cost:g} components={result.details['components']} "
        f"preprocess={engine['preprocess_seconds']:.3f}s "
        f"solve={engine['solve_seconds']:.3f}s merge={engine['merge_seconds']:.3f}s"
    )
    print(f"[jobs=1] histogram={engine['component_size_histogram']}")
    assert engine["mode"] == "sequential"
    assert result.details["components"] >= BLOCKS // 2


def test_parallel_matches_and_speeds_up(benchmark, instance, shared):
    solver = make_solver("mc3-general", jobs=JOBS)
    result = run_once(benchmark, lambda: solver.solve(instance))
    engine = result.details["engine"]
    print(
        f"\n[jobs={JOBS}] cost={result.cost:g} mode={engine['mode']} "
        f"solve={engine['solve_seconds']:.3f}s"
    )

    sequential = shared["sequential"]
    # Bit-identical merge: the parallel run must not change the answer.
    assert result.solution.classifiers == sequential.solution.classifiers
    assert result.cost == sequential.cost
    assert engine["mode"] == "process-pool"

    cores = os.cpu_count() or 1
    seq_solve = sequential.details["engine"]["solve_seconds"]
    par_solve = engine["solve_seconds"]
    speedup = seq_solve / par_solve if par_solve > 0 else float("inf")
    print(f"[jobs={JOBS}] solve-stage speedup: {speedup:.2f}x on {cores} core(s)")
    if cores >= 4:
        # With real cores behind the pool the fan-out must pay for its
        # fork/pickle overhead on a 24-component load.
        assert speedup > 1.0
