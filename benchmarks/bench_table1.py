"""Table 1: dataset summary (Section 6.1).

Regenerates the table at a scaled-down size and checks the published
invariants: BB has uniform unit costs and short queries; P has costs in
[1, 63] and lengths up to 6; S has costs in [1, 50] and lengths up to 10.
"""

from conftest import run_once

from repro.experiments import table_1


def test_table1(benchmark, bench_sizes):
    table = run_once(
        benchmark,
        lambda: table_1(
            bb_n=bench_sizes["bb_n"],
            p_n=bench_sizes["p_n"],
            s_n=4000,
            seed=bench_sizes["seed"],
            cost_sample=200,
        ),
    )
    print()
    print(table.render())

    bb, p, s = table.rows
    assert bb[1] == bench_sizes["bb_n"]
    assert bb[2] == 1.0  # uniform costs
    assert bb[3] <= 4

    assert p[1] == bench_sizes["p_n"]
    assert 1 <= p[2] <= 63
    assert p[3] <= 6

    assert s[1] == 4000
    assert 1 <= s[2] <= 50
    assert s[3] <= 10
