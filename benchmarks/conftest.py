"""Shared setup for the benchmark suite.

Every figure/table of the paper's evaluation (Section 6) has a bench
module that (a) regenerates the panel at a laptop-scale size, (b) prints
the series (visible with ``pytest -s``), and (c) asserts the *shape*
the paper reports — who wins and roughly by how much.  Absolute numbers
are not comparable (the paper used a 32-core server; see EXPERIMENTS.md
for the recorded scale and deviations).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

#: Scale factors shared by the bench modules, chosen so the whole suite
#: finishes in a few minutes on one core.
BB_N = 600
P_N = 1500
P_SHORT_N = 2000
SYNTH_K2_N = 4000
SYNTH_GENERAL_N = 1500
SEED = 0


@pytest.fixture(scope="session")
def bench_sizes():
    return {
        "bb_n": BB_N,
        "p_n": P_N,
        "p_short_n": P_SHORT_N,
        "synth_k2_n": SYNTH_K2_N,
        "synth_general_n": SYNTH_GENERAL_N,
        "seed": SEED,
    }


def run_once(benchmark, fn):
    """Benchmark a slow, deterministic computation with a single round
    (figure regenerations take seconds; statistical repetition belongs to
    the kernel-level ablation benches)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
