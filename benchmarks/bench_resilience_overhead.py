"""No-fault overhead of the resilient execution layer.

The fault-tolerant dispatcher (``ResiliencePolicy`` →
``run_components_resilient``) wraps every component solve in a chain
state machine.  Its contract is that this costs (almost) nothing when
nothing goes wrong: this bench solves the engine-parallel workload
(the same shape as ``bench_engine_parallel.py``) plain and under a
no-fault policy and asserts

* bit-identical solutions (same classifiers, same cost), and
* wrapper overhead **< 2 %** on the median of paired per-round time
  ratios (variants interleave within each round so machine-load drift
  cancels inside each pair; the median discards scheduler hiccups).

The run with per-component cover validation (``validate_covers=True``,
the policy default) is also timed and reported — validation is real
work, so it is excluded from the 2 % assertion.

Standalone usage (mirrors ``bench_bitspace.py`` / BENCH_core.json)::

    python benchmarks/bench_resilience_overhead.py --save BENCH_resilience.json
    python benchmarks/bench_resilience_overhead.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import time
from typing import Dict

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import MC3Instance, TableCost  # noqa: E402
from repro.core.kernels.registry import resolve_backend_name  # noqa: E402
from repro.core.properties import iter_nonempty_subsets  # noqa: E402
from repro.engine import ResiliencePolicy  # noqa: E402
from repro.solvers import make_solver  # noqa: E402

BLOCKS = 24
QUERIES_PER_BLOCK = 8
REPEATS = 25
OVERHEAD_LIMIT = 0.02


def many_component_instance(
    blocks: int = BLOCKS,
    queries_per_block: int = QUERIES_PER_BLOCK,
    seed: int = 0,
) -> MC3Instance:
    """The bench_engine_parallel workload: ``blocks`` property-disjoint
    components, costs a pure function of the classifier."""
    rng = random.Random(f"bench-engine-{seed}")
    queries = []
    costs: Dict[object, float] = {}
    for block in range(blocks):
        props = [f"b{block}p{i}" for i in range(8)]
        block_queries = set()
        while len(block_queries) < queries_per_block:
            block_queries.add(frozenset(rng.sample(props, rng.randint(2, 3))))
        for q in sorted(block_queries, key=sorted):
            queries.append(q)
            for clf in iter_nonempty_subsets(q):
                key = repr(tuple(sorted(clf)))
                costs.setdefault(clf, float(random.Random(key).randint(1, 50)))
    return MC3Instance(queries, TableCost(costs), name="bench-resilience")


def timed_rounds(factories, instance, repeats: int):
    """Per-factory (per-round seconds, last result), measured round-robin.

    Interleaving the variants inside each round means load/thermal
    drift hits all of them equally instead of biasing whichever ran
    last, which matters for a ±2 % assertion on ~100 ms solves.
    """
    rounds = [[] for _ in factories]
    results = [None] * len(factories)
    for factory in factories:  # warmup: caches, lazy imports, JIT-ish paths
        factory().solve(instance)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            for i, factory in enumerate(factories):
                solver = factory()
                started = time.perf_counter()
                results[i] = solver.solve(instance)
                rounds[i].append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return list(zip(rounds, results))


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def paired_overhead(base_rounds, variant_rounds) -> float:
    """Median of the per-round variant/base ratios, minus one.

    Each ratio pairs two solves adjacent in time, so machine-load drift
    cancels within the pair; the median then discards the occasional
    round a scheduler hiccup lands in.  Min-of-N is *not* robust enough
    here: one unusually fast base round flips the sign of a ±2 % bound.
    """
    return median(v / b for b, v in zip(base_rounds, variant_rounds)) - 1.0


def run_all(blocks: int = BLOCKS, repeats: int = REPEATS) -> Dict[str, object]:
    instance = many_component_instance(blocks=blocks)

    measured = timed_rounds(
        [
            lambda: make_solver("mc3-general", jobs=1),
            lambda: make_solver(
                "mc3-general",
                jobs=1,
                resilience=ResiliencePolicy(validate_covers=False),
            ),
            lambda: make_solver(
                "mc3-general", jobs=1, resilience=ResiliencePolicy()
            ),
        ],
        instance,
        repeats,
    )
    (plain_r, plain), (wrapper_r, wrapped), (validated_r, validated) = measured
    plain_s, wrapper_s, validated_s = min(plain_r), min(wrapper_r), min(validated_r)

    # The wrapper must not change the answer...
    assert wrapped.solution.classifiers == plain.solution.classifiers
    assert validated.solution.classifiers == plain.solution.classifiers
    assert wrapped.cost == plain.cost == validated.cost
    # ...and a clean run must not be reported as partial.
    assert wrapped.details["engine"]["resilience"]["failures"] == 0

    overhead = paired_overhead(plain_r, wrapper_r)
    validated_overhead = paired_overhead(plain_r, validated_r)
    print(f"plain engine        : {plain_s:.4f}s (min of {repeats})")
    print(f"resilient, no checks: {wrapper_s:.4f}s ({overhead:+.2%} paired median)")
    print(f"resilient, validated: {validated_s:.4f}s ({validated_overhead:+.2%} paired median)")

    assert overhead < OVERHEAD_LIMIT, (
        f"no-fault wrapper overhead {overhead:+.2%} exceeds "
        f"{OVERHEAD_LIMIT:.0%} on the engine-parallel workload"
    )
    return {
        "benchmark": "resilience_overhead",
        "schema": 2,
        "python": sys.version.split()[0],
        "mode": "smoke" if blocks < BLOCKS else "full",
        "repeats": repeats,
        "default_backend": resolve_backend_name(None),
        "workload": {
            "blocks": blocks,
            "queries_per_block": QUERIES_PER_BLOCK,
            "repeats": repeats,
        },
        "plain_seconds": plain_s,
        "resilient_seconds": wrapper_s,
        "resilient_validated_seconds": validated_s,
        "overhead_fraction": overhead,
        "validated_overhead_fraction": validated_overhead,
        "limit_fraction": OVERHEAD_LIMIT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--save", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized subset (fewer repeats)"
    )
    options = parser.parse_args(argv)
    if options.smoke:
        results = run_all(blocks=12, repeats=25)
    else:
        results = run_all()
    if options.save:
        with open(options.save, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {options.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
