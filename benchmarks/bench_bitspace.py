"""Micro-benchmarks for the bitset property-space rewrite.

Times the three rewritten hot paths — dominated pruning, the
single-query min-cover DP, and greedy WSC (plain + bucketed) — against
the verbatim pre-change implementations kept in
:mod:`repro.core.reference`, asserting bit-identical outputs before any
timing is trusted.  Also re-checks that every registered solver returns
the identical solution with the reference kernels patched in.

Standalone usage (writes median timings + speedups as JSON)::

    python benchmarks/bench_bitspace.py --save BENCH_core.json
    python benchmarks/bench_bitspace.py --smoke   # CI-sized subset

The module is also importable (``run_all``) and exercised by the CI
smoke step; it is intentionally not a pytest-benchmark module — the
reference implementations are the baseline, not a previous run.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import statistics
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import MC3Instance, OverlayCost, TableCost  # noqa: E402
from repro.core.kernels import (  # noqa: E402
    available_backends,
    resolve_backend_name,
    use_backend,
)
from repro.core.mincover import min_cover  # noqa: E402
from repro.core.properties import iter_nonempty_subsets  # noqa: E402
from repro.core.reference import (  # noqa: E402
    ReferenceDominatedPruner,
    patch_reference_kernels,
    reference_bucket_greedy_wsc,
    reference_greedy_wsc,
    reference_min_cover,
)
from repro.exceptions import ReductionError, SolverError  # noqa: E402
from repro.preprocess.dominated import DominatedPruner  # noqa: E402
from repro.setcover import bucket_greedy_wsc, greedy_wsc  # noqa: E402
from repro.setcover.instance import WSCInstance  # noqa: E402
from repro.solvers import available_solvers, make_solver  # noqa: E402


# ----------------------------------------------------------------------
# Workload builders (seeded, deterministic)
# ----------------------------------------------------------------------


def pruning_workload(num_properties: int, num_queries: int, seed: int = 7):
    """One property-connected component with long queries, all subsets
    priced — the regime where the O(3^len) decomposition loop dominates."""
    rng = random.Random(seed)
    names = [f"p{i:02d}" for i in range(num_properties)]
    queries = []
    for _ in range(num_queries):
        length = rng.randint(5, min(7, num_properties))
        queries.append(frozenset(rng.sample(names, length)))
    table = {}
    for q in queries:
        for clf in iter_nonempty_subsets(q):
            if clf not in table:
                table[clf] = float(rng.randint(1, 30))
    return [frozenset(q) for q in queries], TableCost(table)


def mincover_workload(length: int, seed: int = 11):
    """A single long query with a dense candidate pool."""
    rng = random.Random(seed)
    q = frozenset(f"p{i:02d}" for i in range(length))
    candidates = [
        (clf, float(rng.randint(1, 30))) for clf in iter_nonempty_subsets(q)
    ]
    return q, candidates


def wsc_workload(num_elements: int, num_sets: int, seed: int = 13) -> WSCInstance:
    rng = random.Random(seed)
    elements = [f"e{i}" for i in range(num_elements)]
    instance = WSCInstance()
    for index, element in enumerate(elements):
        instance.add_set(f"unit{index}", [element], float(rng.randint(1, 10)))
    for index in range(num_sets):
        size = rng.randint(2, max(2, num_elements // 4))
        members = rng.sample(elements, size)
        instance.add_set(f"s{index}", members, float(rng.randint(1, 10)))
    return instance


def solver_check_instance(seed: int = 17) -> MC3Instance:
    rng = random.Random(seed)
    names = [f"p{i}" for i in range(8)]
    queries = set()
    while len(queries) < 8:
        queries.add(frozenset(rng.sample(names, rng.randint(1, 3))))
    table = {}
    for q in queries:
        for clf in iter_nonempty_subsets(q):
            if clf not in table:
                table[clf] = float(rng.randint(0, 20))
    return MC3Instance(sorted(queries, key=sorted), TableCost(table))


# ----------------------------------------------------------------------
# Timing + equivalence harness
# ----------------------------------------------------------------------


def median_seconds(fn: Callable[[], object], repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def timed_backends(
    run_new: Callable[[], object],
    repeats: int,
    identical: Callable[[object], bool],
) -> Dict[str, Dict]:
    """Run the kernel path under every *available* backend — equivalence
    check first, then timing — selected through ``use_backend`` so the
    benchmarked code is exactly what callers get.  An absent numpy simply
    drops the array entry from the report."""
    entries: Dict[str, Dict] = {}
    for name in available_backends():
        with use_backend(name):
            entries[name] = {
                "identical": identical(run_new()),
                "median_s": median_seconds(run_new, repeats),
            }
    return entries


def workload_entry(
    params: Dict,
    run_new: Callable[[], object],
    reference_median: float,
    repeats: int,
    identical: Callable[[object], bool],
    outputs: Dict,
) -> Dict:
    backends = timed_backends(run_new, repeats, identical)
    return {
        "params": params,
        "identical": all(entry["identical"] for entry in backends.values()),
        "reference_median_s": reference_median,
        "backends": backends,
        "outputs": outputs,
    }


def bench_pruning(repeats: int, num_properties: int, num_queries: int) -> Dict:
    queries, cost_model = pruning_workload(num_properties, num_queries)

    def run_new():
        pruner = DominatedPruner(queries, OverlayCost(cost_model))
        return pruner, pruner.run(queries)

    def run_ref():
        pruner = ReferenceDominatedPruner(queries, OverlayCost(cost_model))
        return pruner, pruner.run(queries)

    ref_pruner, ref_out = run_ref()

    def identical(new) -> bool:
        new_pruner, new_out = new
        return (
            new_out == ref_out
            and new_pruner.removed == ref_pruner.removed
            and new_pruner.forced == ref_pruner.forced
            and new_pruner.overlay.overrides == ref_pruner.overlay.overrides
        )

    return workload_entry(
        {"properties": num_properties, "queries": num_queries},
        run_new,
        median_seconds(run_ref, repeats),
        repeats,
        identical,
        {"removed": len(ref_pruner.removed), "forced": len(ref_pruner.forced)},
    )


def bench_mincover(repeats: int, length: int, calls: int = 10) -> Dict:
    q, candidates = mincover_workload(length)

    def run_new():
        for _ in range(calls):
            result = min_cover(q, candidates)
        return result

    def run_ref():
        for _ in range(calls):
            result = reference_min_cover(q, candidates)
        return result

    ref_cover = run_ref()

    def identical(new_cover) -> bool:
        return (
            new_cover.cost == ref_cover.cost
            and new_cover.classifiers == ref_cover.classifiers
        )

    return workload_entry(
        {"query_length": length, "calls": calls},
        run_new,
        median_seconds(run_ref, repeats),
        repeats,
        identical,
        {"cost": ref_cover.cost, "sets": len(ref_cover.classifiers)},
    )


def bench_greedy(repeats: int, num_elements: int, num_sets: int) -> Dict:
    instance = wsc_workload(num_elements, num_sets)
    ref = reference_greedy_wsc(instance)

    def identical(new) -> bool:
        return new.set_ids == ref.set_ids and new.cost == ref.cost

    return workload_entry(
        {"elements": num_elements, "sets": num_sets},
        lambda: greedy_wsc(instance),
        median_seconds(lambda: reference_greedy_wsc(instance), repeats),
        repeats,
        identical,
        {"cost": ref.cost, "sets": len(ref.set_ids)},
    )


def bench_bucket_greedy(repeats: int, num_elements: int, num_sets: int) -> Dict:
    instance = wsc_workload(num_elements, num_sets)
    ref = reference_bucket_greedy_wsc(instance, epsilon=0.1)

    def identical(new) -> bool:
        return new.set_ids == ref.set_ids and new.cost == ref.cost

    return workload_entry(
        {"elements": num_elements, "sets": num_sets, "epsilon": 0.1},
        lambda: bucket_greedy_wsc(instance, epsilon=0.1),
        median_seconds(
            lambda: reference_bucket_greedy_wsc(instance, epsilon=0.1), repeats
        ),
        repeats,
        identical,
        {"cost": ref.cost, "sets": len(ref.set_ids)},
    )


def check_solver_equivalence() -> Dict:
    """Every registered solver, under every available backend: identical
    solution on the bench instance whether it runs on the mask kernels
    or the patched-in references."""
    instance = solver_check_instance()
    kwargs = {"mc3-robust": {"redundancy": 1}}
    checked: List[str] = []
    with patch_reference_kernels():
        patched_results = {}
        for name in available_solvers():
            solver = make_solver(name, **kwargs.get(name, {}))
            try:
                patched_results[name] = solver.solve(instance)
            except (ReductionError, SolverError):
                # k <= 2 specialists reject the general bench instance
                # the same way on both code paths; nothing to compare.
                continue
    for backend_name in available_backends():
        for name, patched in patched_results.items():
            solver = make_solver(name, backend=backend_name, **kwargs.get(name, {}))
            current = solver.solve(instance)
            if (
                current.solution.classifiers != patched.solution.classifiers
                or current.cost != patched.cost
            ):
                raise AssertionError(
                    f"solver {name!r} on backend {backend_name!r} diverged "
                    "from reference kernels"
                )
        checked.extend(f"{name}@{backend_name}" for name in sorted(patched_results))
    return {"checked": checked, "identical": True}


def run_all(smoke: bool = False, repeats: int = 5) -> Dict:
    if smoke:
        repeats = 1
        sizes = {
            "pruning": (10, 6),
            "mincover": 7,
            "greedy": (200, 400),
            "bucket_greedy": (200, 400),
        }
    else:
        sizes = {
            "pruning": (14, 12),
            "mincover": 10,
            "greedy": (2000, 3000),
            "bucket_greedy": (2000, 3000),
        }
    workloads = {
        "dominated_pruning": bench_pruning(repeats, *sizes["pruning"]),
        "min_cover_dp": bench_mincover(repeats, sizes["mincover"]),
        "greedy_wsc": bench_greedy(repeats, *sizes["greedy"]),
        "bucket_greedy_wsc": bench_bucket_greedy(repeats, *sizes["bucket_greedy"]),
    }
    for name, entry in workloads.items():
        reference = entry["reference_median_s"]
        for backend_entry in entry["backends"].values():
            median = backend_entry["median_s"]
            backend_entry["speedup"] = (
                round(reference / median, 2) if median > 0 else math.inf
            )
        if not entry["identical"]:
            raise AssertionError(f"workload {name!r} outputs diverged")
    return {
        "benchmark": "bitspace",
        "schema": 2,
        "python": sys.version.split()[0],
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "default_backend": resolve_backend_name(None),
        "workloads": workloads,
        "solver_equivalence": check_solver_equivalence(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--save", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes, one repeat (CI)"
    )
    parser.add_argument("--repeats", type=int, default=5)
    options = parser.parse_args(argv)
    results = run_all(smoke=options.smoke, repeats=options.repeats)
    for name, entry in results["workloads"].items():
        print(
            f"{name:20s} reference {entry['reference_median_s'] * 1e3:9.2f} ms"
            f"  identical={entry['identical']}"
        )
        for backend_name, backend_entry in sorted(entry["backends"].items()):
            print(
                f"  {backend_name:18s} {backend_entry['median_s'] * 1e3:9.2f} ms"
                f"  speedup {backend_entry['speedup']:6.2f}x"
                f"  identical={backend_entry['identical']}"
            )
    print(f"default backend: {results['default_backend']}")
    print(
        "solver equivalence: "
        f"{len(results['solver_equivalence']['checked'])} "
        "solver/backend pairs identical"
    )
    if options.save:
        with open(options.save, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {options.save}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
