"""Sub-linear set cover at scale: sampled + streaming vs materialize-and-solve.

The scale-tier workloads (:mod:`repro.datasets.scale`) are weighted set
systems defined by arithmetic, so the two lazy solvers can cover them
without ever holding the full membership structure:

* ``sampled_greedy_wsc`` estimates gains on sampled elements and
  repairs the residual exactly — the claim is **wall-clock**: at the
  1M-element tier it must be at least ``SPEEDUP_FLOOR``x faster than
  materializing the workload and running the bucket greedy, while its
  cover costs at most ``RATIO_CEILING``x the bucket greedy's;
* ``streaming_greedy_wsc`` reads the element stream once (plus a prune
  pass) — the claim is **memory**: under an address-space cap that
  kills the materializing path outright, the streaming (and sampled)
  solvers still finish, which the ``--memcap`` legs demonstrate in a
  capped subprocess.

Every lazy answer is feasibility-checked against the workload itself
(membership recomputed arithmetically), so a fast-but-wrong solver
cannot win.

Standalone usage (mirrors ``bench_cache.py`` / BENCH_cache.json)::

    python benchmarks/bench_setcover_sublinear.py --save BENCH_setcover.json
    python benchmarks/bench_setcover_sublinear.py --smoke        # CI-sized
    python benchmarks/bench_setcover_sublinear.py --scale-smoke  # capped 1M, sampled only
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.datasets.scale import ScaleTierWorkload  # noqa: E402
from repro.setcover import (  # noqa: E402
    bucket_greedy_wsc,
    greedy_wsc,
    sampled_greedy_wsc,
    streaming_greedy_wsc,
)

FULL_TIER = "1m"
FULL_N = 1_000_000
SMOKE_N = 100_000
SEED = 7
REPEATS_FAST = 3

#: Full-mode gates (the smoke tier is too small for the speedup claim —
#: fixed overheads dominate — so it only checks the cost ratio).
SPEEDUP_FLOOR = 10.0
RATIO_CEILING = 1.10

#: Address-space cap for the --memcap legs: comfortably above the lazy
#: solvers' footprint (tens of MB at 1M elements) and far below the
#: materialized instance + its 500MB of member masks.
MEMCAP_BYTES = 384 * 1024 * 1024


def check_cover(workload: ScaleTierWorkload, solution) -> None:
    """Independent feasibility + cost check via recomputed membership."""
    covered = bytearray(workload.universe_size)
    total = 0.0
    for set_id in solution.set_ids:
        total += workload.set_cost(set_id)
        for element_id in workload.set_members(set_id):
            covered[element_id] = 1
    uncovered = covered.count(0)
    assert uncovered == 0, f"{uncovered} elements uncovered"
    assert abs(total - solution.cost) < 1e-6, (total, solution.cost)


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def timed(fn, repeats: int = 1):
    """Median wall-clock of ``repeats`` runs plus the last result."""
    rounds: List[float] = []
    result = None
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        result = fn()
        rounds.append(time.perf_counter() - started)
    return median(rounds), result


def run_tier(n: int, include_exact_greedy: bool) -> Dict[str, object]:
    workload = ScaleTierWorkload(n, seed=SEED)
    tier: Dict[str, object] = {
        "n": n,
        "num_sets": workload.num_sets,
        "frequency": workload.frequency,
        "seed": SEED,
    }

    sampled_stats: Dict[str, object] = {}
    sampled_seconds, sampled = timed(
        lambda: sampled_greedy_wsc(workload, seed=SEED, stats=sampled_stats),
        repeats=REPEATS_FAST,
    )
    check_cover(workload, sampled)

    streaming_seconds, streaming = timed(
        lambda: streaming_greedy_wsc(workload), repeats=REPEATS_FAST
    )
    check_cover(workload, streaming)

    # The conventional path pays for materialization *and* the solve; the
    # lazy solvers replace both, so the honest baseline is their sum.
    materialize_seconds, instance = timed(workload.wsc_instance)
    bucket_seconds, bucket = timed(lambda: bucket_greedy_wsc(instance))
    instance.verify_solution(bucket)
    baseline_seconds = materialize_seconds + bucket_seconds

    speedup = baseline_seconds / sampled_seconds if sampled_seconds > 0 else float("inf")
    ratio = sampled.cost / bucket.cost if bucket.cost else 1.0

    tier.update(
        {
            "sampled_seconds": sampled_seconds,
            "sampled_cost": sampled.cost,
            "sampled_sets": len(sampled.set_ids),
            "sampled_stats": sampled_stats,
            "streaming_seconds": streaming_seconds,
            "streaming_cost": streaming.cost,
            "streaming_sets": len(streaming.set_ids),
            "streaming_cost_ratio": streaming.cost / bucket.cost if bucket.cost else 1.0,
            "materialize_seconds": materialize_seconds,
            "bucket_seconds": bucket_seconds,
            "baseline_seconds": baseline_seconds,
            "bucket_cost": bucket.cost,
            "sampled_speedup": speedup,
            "sampled_cost_ratio": ratio,
        }
    )

    if include_exact_greedy:
        greedy_seconds, greedy = timed(lambda: greedy_wsc(instance))
        instance.verify_solution(greedy)
        tier["greedy_seconds"] = greedy_seconds
        tier["greedy_cost"] = greedy.cost

    print(
        f"n={n}: sampled {sampled_seconds:.3f}s (cost {sampled.cost:.0f}), "
        f"streaming {streaming_seconds:.3f}s (cost {streaming.cost:.0f}), "
        f"materialize+bucket {baseline_seconds:.3f}s (cost {bucket.cost:.0f}) "
        f"-> speedup {speedup:.1f}x, cost ratio {ratio:.4f}"
    )
    return tier


# ----------------------------------------------------------------------
# Memory-cap legs: each leg runs in a subprocess whose address space is
# capped below the materialized instance's footprint.  The materializing
# leg must die (MemoryError or a hard kill); the lazy legs must finish
# and produce a verified cover.
# ----------------------------------------------------------------------

MEMCAP_LEGS = ("materialize", "sampled", "streaming")


def _memcap_child(leg: str, n: int, cap_bytes: int) -> int:
    import resource

    resource.setrlimit(resource.RLIMIT_AS, (cap_bytes, cap_bytes))
    workload = ScaleTierWorkload(n, seed=SEED)
    try:
        if leg == "materialize":
            instance = workload.wsc_instance()
            solution = bucket_greedy_wsc(instance)
        elif leg == "sampled":
            solution = sampled_greedy_wsc(workload, seed=SEED)
            check_cover(workload, solution)
        else:
            solution = streaming_greedy_wsc(workload)
            check_cover(workload, solution)
    except MemoryError:
        print(f"memcap-child {leg}: MemoryError", flush=True)
        return 42
    print(f"memcap-child {leg}: cost {solution.cost:.0f}", flush=True)
    return 0


def run_memcap(n: int, cap_bytes: int) -> Dict[str, object]:
    results: Dict[str, object] = {"cap_bytes": cap_bytes, "n": n}
    for leg in MEMCAP_LEGS:
        proc = subprocess.run(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--_memcap-child",
                leg,
                str(n),
                str(cap_bytes),
            ],
            capture_output=True,
            text=True,
        )
        # 0 = finished under the cap; anything else (MemoryError exit 42,
        # or the allocator aborting the process) = the cap killed it.
        survived = proc.returncode == 0
        results[leg] = {
            "survived": survived,
            "returncode": proc.returncode,
            "output": (proc.stdout + proc.stderr).strip()[-400:],
        }
        print(f"memcap {leg:12s}: {'survived' if survived else 'killed'} "
              f"(rc={proc.returncode})")
    return results


def run_all(mode: str) -> Dict[str, object]:
    n = FULL_N if mode == "full" else SMOKE_N
    tier_name = FULL_TIER if mode == "full" else "100k"
    tier = run_tier(n, include_exact_greedy=(mode != "full"))

    results: Dict[str, object] = {
        "benchmark": "setcover_sublinear",
        "schema": 2,
        "python": sys.version.split()[0],
        "mode": mode,
        "speedup_floor": SPEEDUP_FLOOR,
        "ratio_ceiling": RATIO_CEILING,
        "tiers": {tier_name: tier},
    }

    # The cost gate holds at every size; the speedup and memory gates
    # are claims about the production tier, so full mode only.
    assert tier["sampled_cost_ratio"] <= RATIO_CEILING, (
        f"sampled cost ratio {tier['sampled_cost_ratio']:.4f} exceeds "
        f"{RATIO_CEILING}x bucket-greedy"
    )
    if mode == "full":
        assert tier["sampled_speedup"] >= SPEEDUP_FLOOR, (
            f"sampled speedup {tier['sampled_speedup']:.1f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor vs materialize+bucket"
        )
        memcap = run_memcap(n, MEMCAP_BYTES)
        results["memcap"] = memcap
        assert not memcap["materialize"]["survived"], (
            "materializing path survived the memory cap — the cap no "
            "longer demonstrates anything; lower MEMCAP_BYTES"
        )
        assert memcap["sampled"]["survived"], memcap["sampled"]
        assert memcap["streaming"]["survived"], memcap["streaming"]
    return results


def run_scale_smoke(cap_bytes: int = 512 * 1024 * 1024) -> int:
    """CI scale-smoke: the 1M tier, sampled solver only, in-process
    address-space cap.  Proves the sub-linear path works at production
    scale inside CI's minute budget without paying for the baseline."""
    import resource

    resource.setrlimit(resource.RLIMIT_AS, (cap_bytes, cap_bytes))
    started = time.perf_counter()
    workload = ScaleTierWorkload(FULL_N, seed=SEED)
    stats: Dict[str, object] = {}
    solution = sampled_greedy_wsc(workload, seed=SEED, stats=stats)
    check_cover(workload, solution)
    elapsed = time.perf_counter() - started
    print(
        f"scale-smoke: 1M tier covered under a {cap_bytes >> 20}MB cap in "
        f"{elapsed:.2f}s (cost {solution.cost:.0f}, "
        f"{stats['sets_selected']} sets, mode {stats['mode']})"
    )
    assert stats["mode"] == "sampled", stats
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--save", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized tier (100k elements)"
    )
    parser.add_argument(
        "--scale-smoke",
        action="store_true",
        help="memory-capped 1M tier, sampled solver only (CI scale job)",
    )
    parser.add_argument("--_memcap-child", nargs=3, metavar=("LEG", "N", "CAP"),
                        help=argparse.SUPPRESS)
    options = parser.parse_args(argv)
    if options._memcap_child:
        leg, n, cap = options._memcap_child
        return _memcap_child(leg, int(n), int(cap))
    if options.scale_smoke:
        return run_scale_smoke()
    results = run_all("smoke" if options.smoke else "full")
    if options.save:
        with open(options.save, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {options.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
