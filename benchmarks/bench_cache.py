"""Warm-vs-cold performance of the component-solution cache.

The content-addressed cache (:mod:`repro.engine.cache`) promises two
things on the engine pipeline:

* an **all-miss cold pass costs (almost) nothing** — fingerprinting and
  the failed lookup must stay under 3 % of the solve on a workload with
  realistically sized components, and
* a **warm pass is dramatically faster** — every component served from
  cache skips its solve entirely, so a fully warm run must be at least
  10x faster than the cold solve on the 2000-query workload.

Both claims are checked against the paper-scale shape: ~250
property-disjoint blocks x 8 queries of 4-6 properties each (~2000
queries, thousands of distinct candidate classifiers), solved by
``mc3-general`` with the paper's ``best_of`` WSC method.  Every timed
variant must return bit-identical classifiers and cost — a cache that
changes any answer loses, no matter how fast it is.

Standalone usage (mirrors ``bench_bitspace.py`` / BENCH_core.json)::

    python benchmarks/bench_cache.py --save BENCH_cache.json
    python benchmarks/bench_cache.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import time
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import MC3Instance, TableCost  # noqa: E402
from repro.core.kernels.registry import resolve_backend_name  # noqa: E402
from repro.core.properties import iter_nonempty_subsets  # noqa: E402
from repro.engine.cache import MemorySolutionCache  # noqa: E402
from repro.solvers import make_solver  # noqa: E402

BLOCKS = 250
QUERIES_PER_BLOCK = 8
REPEATS = 7
OVERHEAD_LIMIT = 0.03
SPEEDUP_FLOOR = 10.0


def cache_workload(
    blocks: int = BLOCKS,
    queries_per_block: int = QUERIES_PER_BLOCK,
    seed: int = 0,
):
    """``(instance, classifier_count)``: ~``blocks * queries_per_block``
    queries of 4-6 properties over property-disjoint 8-property blocks;
    costs a pure function of the classifier, so every run prices
    identically."""
    rng = random.Random(f"bench-cache-{seed}")
    queries = []
    costs: Dict[object, float] = {}
    for block in range(blocks):
        props = [f"b{block}p{i}" for i in range(8)]
        block_queries = set()
        while len(block_queries) < queries_per_block:
            block_queries.add(frozenset(rng.sample(props, rng.randint(4, 6))))
        for q in sorted(block_queries, key=sorted):
            queries.append(q)
            for clf in iter_nonempty_subsets(q):
                key = repr(tuple(sorted(clf)))
                costs.setdefault(clf, float(random.Random(key).randint(1, 50)))
    return MC3Instance(queries, TableCost(costs), name="bench-cache"), len(costs)


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def paired_overhead(base_rounds, variant_rounds) -> float:
    """Median of per-round variant/base ratios, minus one (same
    rationale as ``bench_resilience_overhead.paired_overhead``: paired
    ratios cancel load drift, the median discards hiccups)."""
    return median(v / b for b, v in zip(base_rounds, variant_rounds)) - 1.0


def timed_solve(solver, instance):
    started = time.perf_counter()
    result = solver.solve(instance)
    return time.perf_counter() - started, result


def run_all(blocks: int = BLOCKS, repeats: int = REPEATS) -> Dict[str, object]:
    instance, classifiers = cache_workload(blocks=blocks)

    # Decomposition only (step 2): dominated pruning solves a large part
    # of this workload during *preprocessing*, which the cache neither
    # amortizes nor should be charged for — with step 1 in the pipeline
    # the warm pass is bounded by pruning time, not by cache service.
    def solver(cache=None):
        return make_solver(
            "mc3-general",
            wsc_method="best_of",
            preprocess_steps=(2,),
            cache=cache,
        )

    # Warmup outside timing: lazy imports, interned masks, allocator.
    baseline = solver(cache="off").solve(instance)

    warm_store = MemorySolutionCache(max_entries=65536)
    solver(cache=warm_store).solve(instance)  # populate every entry

    plain_rounds: List[float] = []
    cold_rounds: List[float] = []
    warm_rounds: List[float] = []
    plain = cold = warm = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            seconds, plain = timed_solve(solver(cache="off"), instance)
            plain_rounds.append(seconds)
            # A fresh store every round keeps the cold pass all-miss.
            seconds, cold = timed_solve(
                solver(cache=MemorySolutionCache(max_entries=65536)), instance
            )
            cold_rounds.append(seconds)
            seconds, warm = timed_solve(solver(cache=warm_store), instance)
            warm_rounds.append(seconds)
    finally:
        if gc_was_enabled:
            gc.enable()

    # The cache must never change the answer, hit or miss.
    for result in (plain, cold, warm):
        assert result.solution.classifiers == baseline.solution.classifiers
        assert result.cost == baseline.cost

    components = plain.details["components"]
    cold_cache = cold.details["engine"]["cache"]
    warm_cache = warm.details["engine"]["cache"]
    assert cold_cache["misses"] == components, cold_cache
    assert warm_cache["hits"] == components, warm_cache

    plain_s, cold_s, warm_s = (
        median(plain_rounds),
        median(cold_rounds),
        median(warm_rounds),
    )
    overhead = paired_overhead(plain_rounds, cold_rounds)
    speedup = plain_s / warm_s if warm_s > 0 else float("inf")

    print(f"workload            : {len(instance.queries)} queries, "
          f"{classifiers} classifiers, {components} components")
    print(f"no cache            : {plain_s:.4f}s (median of {repeats})")
    print(f"cold (all-miss)     : {cold_s:.4f}s ({overhead:+.2%} paired median)")
    print(f"warm (all-hit)      : {warm_s:.4f}s ({speedup:.1f}x vs no cache)")

    assert overhead < OVERHEAD_LIMIT, (
        f"all-miss cold-path overhead {overhead:+.2%} exceeds "
        f"{OVERHEAD_LIMIT:.0%} on the {len(instance.queries)}-query workload"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:.0f}x floor"
    )
    return {
        "benchmark": "solution_cache",
        "schema": 2,
        "python": sys.version.split()[0],
        "mode": "smoke" if blocks < BLOCKS else "full",
        "repeats": repeats,
        "default_backend": resolve_backend_name(None),
        "workload": {
            "blocks": blocks,
            "queries_per_block": QUERIES_PER_BLOCK,
            "queries": len(instance.queries),
            "classifiers": classifiers,
            "components": components,
        },
        "plain_seconds": plain_s,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "overhead_fraction": overhead,
        "overhead_limit_fraction": OVERHEAD_LIMIT,
        "warm_speedup": speedup,
        "warm_speedup_floor": SPEEDUP_FLOOR,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--save", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized subset (fewer blocks)"
    )
    parser.add_argument("--repeats", type=int, default=None)
    options = parser.parse_args(argv)
    repeats = options.repeats if options.repeats is not None else (
        3 if options.smoke else REPEATS
    )
    blocks = 40 if options.smoke else BLOCKS
    results = run_all(blocks=blocks, repeats=repeats)
    if options.save:
        with open(options.save, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {options.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
