"""Ablation: max-flow kernel choice inside MC3[S] (Section 6.1 reports
testing the bipartite-optimised algorithms and settling on Dinic).

Benchmarks each kernel on the same bipartite WVC network produced by the
k = 2 reduction; all kernels must return the same optimal value.
"""

import pytest

from repro.datasets import synthetic_k2
from repro.flow import ALGORITHMS, max_flow
from repro.preprocess import preprocess
from repro.reductions import mc3_to_bipartite_wvc, wvc_to_flow_network
from repro.reductions.wvc_to_flow import SINK, SOURCE

N = 4000
SEED = 0


@pytest.fixture(scope="module")
def wvc_graph():
    instance = synthetic_k2(N, seed=SEED)
    prep = preprocess(instance)
    queries = [q for component in prep.components for q in component.queries]
    if not queries:  # pragma: no cover - depends on the draw
        pytest.skip("preprocessing covered the whole load")
    return mc3_to_bipartite_wvc(queries, prep.overlay)


@pytest.fixture(scope="module")
def reference_value(wvc_graph):
    network = wvc_to_flow_network(wvc_graph)
    return max_flow(network, SOURCE, SINK, algorithm="dinic").value


@pytest.mark.parametrize("kernel", sorted(ALGORITHMS))
def test_maxflow_kernel(benchmark, kernel, wvc_graph, reference_value):
    def run():
        network = wvc_to_flow_network(wvc_graph)
        return max_flow(network, SOURCE, SINK, algorithm=kernel).value

    value = benchmark(run)
    assert value == pytest.approx(reference_value)
