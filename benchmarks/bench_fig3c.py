"""Figure 3c: synthetic k ≤ 2 — MC3[S] runtime with/without the
preprocessing step.

Paper shape: preprocessing saves ~85% of the runtime at n = 100,000.
Reproduction note (EXPERIMENTS.md): our Dinic kernel is fast enough in
this size range that preprocessing's own linear pass offsets most of the
flow-stage savings; the bench therefore asserts correctness (identical
optimal costs) and that preprocessing shrinks the residual instance by
>90%, and *reports* both runtimes rather than asserting the paper's
ratio.
"""

from conftest import run_once

from repro.datasets import synthetic_k2
from repro.experiments import figure_3c
from repro.preprocess import preprocess
from repro.solvers import make_solver


def test_fig3c(benchmark, bench_sizes):
    n = bench_sizes["synth_k2_n"]
    sizes = [n // 4, n // 2, n]
    figure = run_once(
        benchmark, lambda: figure_3c(sizes=sizes, seed=bench_sizes["seed"])
    )
    print()
    print(figure.render())

    with_prep = figure.series_by_name("MC3[S] + preprocessing").ys()
    without = figure.series_by_name("MC3[S] w/o preprocessing").ys()
    assert all(t >= 0 for t in with_prep + without)

    instance = synthetic_k2(n, seed=bench_sizes["seed"])
    # Correctness: preprocessing does not change the (optimal) cost.
    cost_with = make_solver("mc3-k2").solve(instance).cost
    cost_without = make_solver("mc3-k2", preprocess_steps=()).solve(instance).cost
    assert cost_with == cost_without
    # Effectiveness: the residual instance shrinks dramatically.
    prep = preprocess(instance)
    residual = sum(component.n for component in prep.components)
    assert residual <= 0.1 * instance.n
