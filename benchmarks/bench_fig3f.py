"""Figure 3f: synthetic, general case — preprocessing effect on runtime.

Paper shape: preprocessing halves Algorithm 3's runtime at n = 100,000.
Reproduction note (EXPERIMENTS.md): our greedy/primal–dual stages are
fast relative to the Python-level preprocessing pass at these scales, so
the bench reports both runtimes and asserts only sanity (positive,
same-cost-direction) properties; the quality effect is asserted in
bench_fig3e.
"""

from conftest import run_once

from repro.experiments import figure_3f


def test_fig3f(benchmark, bench_sizes):
    n = bench_sizes["synth_general_n"]
    figure = run_once(
        benchmark, lambda: figure_3f(sizes=[n // 2, n], seed=bench_sizes["seed"])
    )
    print()
    print(figure.render())

    with_prep = figure.series_by_name("MC3[G] + preprocessing").ys()
    without = figure.series_by_name("MC3[G] w/o preprocessing").ys()
    assert all(t > 0 for t in with_prep + without)
    # Runtime grows with the load in both configurations.
    assert with_prep[-1] >= with_prep[0] * 0.5
    assert without[-1] >= without[0] * 0.5
