"""Benchmarks for the future-work extensions: budgeted partial cover
(Section 5.3/8) and incremental planning.

Not figures from the paper — it leaves both variants open — but they
exercise design choices DESIGN.md calls out, and the assertions encode
the expected dominance relations (exact ≥ bundle greedy ≥ classifier
greedy; incremental regret ≥ 1)."""

import pytest

from conftest import run_once

from repro.datasets import private_like
from repro.experiments import subset_order
from repro.extensions import (
    IncrementalPlanner,
    classifier_greedy_partial_cover,
    exact_partial_cover,
    greedy_partial_cover,
)

SEED = 0


@pytest.fixture(scope="module")
def budget_instance():
    load = private_like(400, seed=SEED)
    weights = {q: (3.0 if len(q) <= 2 else 1.0) for q in load.queries}
    full_cost = greedy_partial_cover(load, weights, budget=float("inf")).cost
    return load, weights, full_cost


@pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
def test_bundle_greedy_partial_cover(benchmark, budget_instance, fraction):
    load, weights, full_cost = budget_instance
    budget = full_cost * fraction
    solution = run_once(
        benchmark, lambda: greedy_partial_cover(load, weights, budget=budget)
    )
    solution.verify(load, weights)
    print(f"\n[budget {fraction:.0%}] bundle greedy weight={solution.covered_weight:g}")
    assert solution.cost <= budget + 1e-9


def test_greedy_dominates_classifier_greedy(benchmark, budget_instance):
    load, weights, full_cost = budget_instance
    budget = full_cost * 0.5

    def run():
        bundle = greedy_partial_cover(load, weights, budget=budget)
        clf = classifier_greedy_partial_cover(load, weights, budget=budget)
        return bundle, clf

    bundle, clf = run_once(benchmark, run)
    print(f"\nbundle={bundle.covered_weight:g} classifier={clf.covered_weight:g}")
    # The bundle greedy sees multi-classifier covers; it should never be
    # materially worse (small inversions can occur from tie-breaking).
    assert bundle.covered_weight >= 0.95 * clf.covered_weight


def test_exact_vs_heuristics_tiny(benchmark):
    """On a tiny slice the exact oracle quantifies the heuristics' gap."""
    load = private_like(60, seed=SEED).restricted_to(lambda q: len(q) <= 2).subset(10)
    weights = {q: float(1 + (len(q) % 2)) for q in load.queries}
    full_cost = greedy_partial_cover(load, weights, budget=float("inf")).cost
    budget = full_cost * 0.5

    def run():
        return (
            exact_partial_cover(load, weights, budget=budget),
            greedy_partial_cover(load, weights, budget=budget),
        )

    optimum, heuristic = run_once(benchmark, run)
    print(f"\nexact={optimum.covered_weight:g} greedy={heuristic.covered_weight:g}")
    assert heuristic.covered_weight <= optimum.covered_weight + 1e-9
    assert heuristic.covered_weight >= 0.5 * optimum.covered_weight


def test_incremental_regret(benchmark):
    load = private_like(600, seed=SEED)
    order = subset_order(load.n, seed=SEED)
    queries = [load.queries[i] for i in order]

    def run():
        planner = IncrementalPlanner(load.cost, solver_name="mc3-general")
        for start in range(0, len(queries), 150):
            planner.add_batch(queries[start : start + 150])
        planner.verify()
        return planner.regret()

    regret = run_once(benchmark, run)
    print(f"\nincremental regret: {regret:.3f}x")
    assert 1.0 - 1e-9 <= regret < 1.5
