"""Figure 3b: P dataset restricted to short queries (~80% of the load),
construction cost vs #queries, with varying classifier costs.

Paper shape: MC3[S] is optimal and beats both the Query-Oriented and
Property-Oriented baselines by a wide margin (~30% in the paper).
"""

from conftest import run_once

from repro.experiments import figure_3b


def test_fig3b(benchmark, bench_sizes):
    n = bench_sizes["p_short_n"]
    figure = run_once(
        benchmark, lambda: figure_3b(n=n, seed=bench_sizes["seed"])
    )
    print()
    print(figure.render())

    mc3 = figure.series_by_name("MC3[S]").ys()
    qo = figure.series_by_name("Query-Oriented").ys()
    po = figure.series_by_name("Property-Oriented").ys()

    assert all(m <= q for m, q in zip(mc3, qo))
    assert all(m <= p for m, p in zip(mc3, po))
    # At the full load MC3[S] is at least 10% below the better baseline
    # (paper: ~30%; our generated stand-in lands at ~15-25%).
    best_baseline = min(qo[-1], po[-1])
    assert mc3[-1] <= 0.9 * best_baseline
