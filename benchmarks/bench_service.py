"""No-fault overhead of the planner service front end.

The daemon (``repro.service``) wraps :class:`IncrementalPlanner` in an
admission queue, a write-ahead journal, and an asyncio worker.  Its
contract is that a healthy request pays (almost) nothing for the
crash-safety machinery: this bench drives the same seeded workload

* **direct** — journal append + ``add_batch`` called synchronously
  (the engine with durability but no daemon), and
* **service** — the full in-process daemon path
  (:class:`PlannerClient` → queue → coalescer → journaled apply),

interleaved round-robin, and asserts

* bit-identical final planner state (``state_digest``), and
* daemon overhead **< 5 %** on the median of paired per-round time
  ratios (pairing cancels machine-load drift; the median discards
  scheduler hiccups).

Per-request p50/p99 latencies from the daemon's own stage rings
(queue wait / journal / solve / total) are reported alongside.  Both
legs run with ``fsync`` off so the comparison measures the daemon, not
the disk.

Standalone usage (mirrors ``bench_resilience_overhead.py``)::

    python benchmarks/bench_service.py --save BENCH_service.json
    python benchmarks/bench_service.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import random
import sys
import tempfile
import time
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.extensions import IncrementalPlanner  # noqa: E402
from repro.service.daemon import (  # noqa: E402
    PlannerClient,
    PlannerService,
    ServiceConfig,
)
from repro.service.drill import drill_cost  # noqa: E402
from repro.service.journal import WorkloadJournal  # noqa: E402

SEED = 17
BATCHES = 24
BATCH_SIZE = 12
PROPERTIES = 48
REPEATS = 15
OVERHEAD_LIMIT = 0.05


def workload(seed: int, batches: int) -> List[List[List[str]]]:
    """Seeded batches over a universe wide enough that every batch
    does real solve work (milliseconds, not the drill's microseconds) —
    the overhead ratio is about the daemon, so the denominator must be
    a representative request, not a trivial one."""
    rng = random.Random(f"bench-service-{seed}")
    universe = [f"p{i}" for i in range(PROPERTIES)]
    plan: List[List[List[str]]] = []
    for _ in range(batches):
        batch = set()
        while len(batch) < BATCH_SIZE:
            batch.add(frozenset(rng.sample(universe, rng.randint(3, 5))))
        plan.append([sorted(query) for query in sorted(batch, key=sorted)])
    return plan


def service_config(journal_path: str = None) -> ServiceConfig:
    return ServiceConfig(
        journal_path=journal_path,
        journal_fsync=False,
        cache=None,  # cache off on both legs: measure the daemon, not hits
        default_deadline_seconds=None,
        max_retries=0,
        backoff_base_seconds=0.0,
    )


def run_direct(workdir: str, batches: List[List[List[str]]]) -> str:
    """The baseline leg: durability and the same resilience policy,
    called synchronously as a library.  A throwaway (never-started)
    service supplies the identical policy/breaker wiring, so the ratio
    isolates the daemon machinery — queue, coalescer, executor,
    protocol — not the robustness work both legs must do.  (The
    resilient wrapper's own no-fault cost is bounded separately by
    ``bench_resilience_overhead.py``.)"""
    path = os.path.join(workdir, "direct.journal")
    template = PlannerService(drill_cost(SEED), config=service_config())
    planner = IncrementalPlanner(drill_cost(SEED))
    with WorkloadJournal(path, fsync=False) as journal:
        for batch in batches:
            queries = [frozenset(spec) for spec in batch]
            journal.append_batch(queries)
            planner.add_batch(
                queries,
                solver_overrides={"resilience": template.policy_for(None)},
            )
    os.unlink(path)
    return planner.state_digest()


async def _drive_service(
    workdir: str, batches: List[List[List[str]]]
) -> Dict[str, object]:
    path = os.path.join(workdir, "service.journal")
    service = PlannerService(drill_cost(SEED), config=service_config(path))
    await service.start()
    try:
        client = PlannerClient(service)
        for batch in batches:
            await client.plan(batch)
        snapshot = await client.stats()
    finally:
        await service.stop()
        os.unlink(path)
    return snapshot


def run_service(workdir: str, batches: List[List[List[str]]]) -> Dict[str, object]:
    """The daemon leg: same workload through the full admission path."""
    return asyncio.run(_drive_service(workdir, batches))


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def paired_overhead(base_rounds, variant_rounds) -> float:
    """Median of per-round variant/base ratios, minus one."""
    return median(v / b for b, v in zip(base_rounds, variant_rounds)) - 1.0


def run_all(batches: int = BATCHES, repeats: int = REPEATS) -> Dict[str, object]:
    plan = workload(SEED, batches)
    direct_rounds: List[float] = []
    service_rounds: List[float] = []
    direct_digest = None
    snapshot: Dict[str, object] = {}
    with tempfile.TemporaryDirectory(prefix="bench-service-") as workdir:
        # Warmup: lazy imports, first event loop, solver code paths.
        run_direct(workdir, plan)
        run_service(workdir, plan)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                gc.collect()
                started = time.perf_counter()
                direct_digest = run_direct(workdir, plan)
                direct_rounds.append(time.perf_counter() - started)
                started = time.perf_counter()
                snapshot = run_service(workdir, plan)
                service_rounds.append(time.perf_counter() - started)
        finally:
            if gc_was_enabled:
                gc.enable()

    # The daemon must not change the answer: bit-identical final state.
    state = snapshot["workload"]
    assert state["state_digest"] == direct_digest, (
        state["state_digest"],
        direct_digest,
    )
    requests = snapshot["requests"]
    assert requests["completed"] == batches
    assert requests["failed"] == 0 and requests["shed"] == 0

    direct_s, service_s = min(direct_rounds), min(service_rounds)
    overhead = paired_overhead(direct_rounds, service_rounds)
    latency = requests["latency"]
    print(f"direct (journal+planner): {direct_s:.4f}s (min of {repeats})")
    print(f"service (daemon path)   : {service_s:.4f}s ({overhead:+.2%} paired median)")
    for stage in ("queue_wait", "journal", "solve", "total"):
        summary = latency[stage]
        if summary.get("count"):
            print(
                f"  {stage:<10} p50 {summary['p50_ms']:7.3f}ms"
                f"  p99 {summary['p99_ms']:7.3f}ms"
            )

    assert overhead < OVERHEAD_LIMIT, (
        f"no-fault daemon overhead {overhead:+.2%} exceeds "
        f"{OVERHEAD_LIMIT:.0%} on the service workload"
    )
    return {
        "benchmark": "service_overhead",
        "schema": 1,
        "python": sys.version.split()[0],
        "mode": "smoke" if batches < BATCHES else "full",
        "workload": {
            "seed": SEED,
            "batches": batches,
            "batch_size": BATCH_SIZE,
            "properties": PROPERTIES,
            "repeats": repeats,
        },
        "direct_seconds": direct_s,
        "service_seconds": service_s,
        "overhead_fraction": overhead,
        "limit_fraction": OVERHEAD_LIMIT,
        "state_digest": direct_digest,
        "request_latency_ms": latency,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--save", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized subset (fewer rounds)"
    )
    options = parser.parse_args(argv)
    if options.smoke:
        results = run_all(batches=10, repeats=7)
    else:
        results = run_all()
    if options.save:
        with open(options.save, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"wrote {options.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
