"""End-to-end bench: classifier budget vs search recall.

Not a paper figure — the paper measures construction cost only — but
the curve quantifies the economics its introduction argues for: spend
on covering classifiers → complete annotations → complete results.
"""

from conftest import run_once

import pytest

from repro.experiments import budget_recall_curve


def test_budget_recall_curve(benchmark):
    figure = run_once(
        benchmark,
        lambda: budget_recall_curve(
            n=300, budget_fractions=(0.0, 0.25, 0.5, 0.75, 1.0), seed=0
        ),
    )
    print()
    print(figure.render())

    recall = figure.series_by_name("mean search recall").ys()
    assert recall == sorted(recall)  # more budget never hurts
    assert recall[-1] == pytest.approx(1.0)
    assert recall[0] < 0.5  # the annotation gap is real before planning
