"""Ablation: the price of r-redundant coverage (robust variant).

Asserts the structural relations: the robust solver at r = 1 is an
ordinary (greedy multi-cover) solution, r = 2 costs strictly more but
less than 3× the plain optimum on these loads, and the r = 2 output
survives the loss of any single classifier.
"""

import pytest

from conftest import run_once

from repro.datasets import private_like
from repro.solvers import make_solver, survives_failures

N = 800
SEED = 0


@pytest.fixture(scope="module")
def instance():
    base = private_like(N, seed=SEED)
    return base.restricted_to(lambda q: len(q) >= 2, name="robust-bench")


def test_robust_r1(benchmark, instance):
    result = run_once(benchmark, lambda: make_solver("mc3-robust", redundancy=1).solve(instance))
    result.solution.verify(instance)
    print(f"\n[r=1] cost={result.cost:g}")


def test_robust_r2(benchmark, instance):
    plain = make_solver("mc3-general").solve(instance)
    result = run_once(benchmark, lambda: make_solver("mc3-robust", redundancy=2).solve(instance))
    result.solution.verify(instance)
    print(f"\n[r=2] cost={result.cost:g} vs plain {plain.cost:g}")
    assert plain.cost < result.cost < 3.5 * plain.cost
    assert survives_failures(instance, result.solution, failures=1)
