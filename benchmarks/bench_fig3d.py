"""Figure 3d: P dataset, general case — construction cost of the five
algorithms, with the 1000-query point replaced by the fashion slice.

Paper shape: MC3[G] best overall (~12% below its closest competitor in
the paper); Short-First competitive everywhere and essentially tied with
MC3[G] on the 96%-short fashion slice; Local-Greedy and the naive
baselines clearly worse.
"""

from conftest import run_once

from repro.experiments import figure_3d


def test_fig3d(benchmark, bench_sizes):
    n = bench_sizes["p_n"]
    figure = run_once(
        benchmark,
        lambda: figure_3d(
            n=n, sizes=[n // 2, n], seed=bench_sizes["seed"], fashion_point=True
        ),
    )
    print()
    print(figure.render())

    general = figure.series_by_name("MC3[G]").ys()
    short_first = figure.series_by_name("Short-First").ys()
    local_greedy = figure.series_by_name("Local-Greedy").ys()
    qo = figure.series_by_name("Query-Oriented").ys()
    po = figure.series_by_name("Property-Oriented").ys()

    # MC3[G] wins or ties (2% tolerance for the tiny fashion point)
    # against every competitor, everywhere.
    for other in (short_first, local_greedy, qo, po):
        assert all(g <= 1.02 * o for g, o in zip(general, other))
    # At the full load the naive baselines are strictly dominated.
    assert general[-1] < qo[-1]
    assert general[-1] < po[-1]
    assert general[-1] < local_greedy[-1]
