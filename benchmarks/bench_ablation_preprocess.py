"""Ablation: per-step contribution of Algorithm 1.

The paper reports aggregate preprocessing savings; this bench measures
each cumulative step set (∅ → {1} → {1,2} → {1,2,3} → {1,2,3,4}) on the
same synthetic load, benchmarking the *full solve* under each
configuration and asserting that quality never degrades as steps are
added.
"""

import pytest

from conftest import run_once

from repro.datasets import synthetic
from repro.preprocess import ALL_STEPS
from repro.solvers import make_solver

N = 1500
SEED = 0

CONFIGURATIONS = [
    ("none", ()),
    ("step1", (1,)),
    ("steps12", (1, 2)),
    ("steps123", (1, 2, 3)),
    ("steps1234", ALL_STEPS),
]


@pytest.fixture(scope="module")
def instance():
    return synthetic(N, seed=SEED, max_classifier_length=3)


@pytest.fixture(scope="module")
def costs_by_configuration():
    return {}


@pytest.mark.parametrize("label,steps", CONFIGURATIONS)
def test_preprocess_steps(benchmark, label, steps, instance, costs_by_configuration):
    solver = make_solver("mc3-general", lp_size_limit=0, preprocess_steps=steps)
    result = run_once(benchmark, lambda: solver.solve(instance))
    costs_by_configuration[label] = result.cost
    print(f"\n[{label}] cost={result.cost:g}")
    # Quality is monotone in the pruning steps (each preserves an
    # optimum and only removes bad options from the approximation).
    if "none" in costs_by_configuration:
        assert result.cost <= costs_by_configuration["none"] + 1e-9
