"""Figure 3a: BB dataset (uniform costs), construction cost vs #queries.

Paper shape: MC3[S] and Mixed coincide (both optimal), Query-Oriented is
worse, Property-Oriented worst.
"""

from conftest import run_once

from repro.experiments import figure_3a


def test_fig3a(benchmark, bench_sizes):
    n = bench_sizes["bb_n"]
    sizes = [n // 4, n // 2, n]
    figure = run_once(
        benchmark, lambda: figure_3a(n=n, sizes=sizes, seed=bench_sizes["seed"])
    )
    print()
    print(figure.render())

    mc3 = figure.series_by_name("MC3[S]").ys()
    mixed = figure.series_by_name("Mixed").ys()
    qo = figure.series_by_name("Query-Oriented").ys()
    po = figure.series_by_name("Property-Oriented").ys()

    # Both exact algorithms agree point-for-point.
    assert mc3 == mixed
    # The optimal cost never exceeds either baseline, and at the full
    # load both baselines are strictly worse (the paper's ordering:
    # optimal < QO < PO).
    assert all(m <= q for m, q in zip(mc3, qo))
    assert all(m <= p for m, p in zip(mc3, po))
    assert mc3[-1] < qo[-1] < po[-1]
