"""Figure 3e: synthetic, general case — preprocessing effect on
construction cost.

Paper shape: preprocessing lowers Algorithm 3's output cost (35% at the
paper's scale).  In the scalable greedy/primal-dual configuration our
stand-in shows a consistent 5-10% saving (and ~35% on the primal–dual
arm alone; see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.experiments import figure_3e


def test_fig3e(benchmark, bench_sizes):
    n = bench_sizes["synth_general_n"]
    figure = run_once(
        benchmark,
        lambda: figure_3e(sizes=[n // 2, n, 2 * n], seed=bench_sizes["seed"]),
    )
    print()
    print(figure.render())

    with_prep = figure.series_by_name("MC3[G] + preprocessing").ys()
    without = figure.series_by_name("MC3[G] w/o preprocessing").ys()

    # Preprocessing never hurts and helps overall.
    assert all(a <= b + 1e-9 for a, b in zip(with_prep, without))
    assert sum(with_prep) < sum(without)
