"""Micro-benchmarks of the individual solver kernels at fixed size —
useful for tracking performance regressions of the substrates
themselves (these are the repeated-measurement benches; the figure
benches run single-shot)."""

import pytest

from repro.datasets import private_like_short, synthetic, synthetic_k2
from repro.preprocess import preprocess
from repro.reductions import mc3_to_wsc
from repro.setcover import greedy_wsc, primal_dual_wsc
from repro.solvers import make_solver

SEED = 0


@pytest.fixture(scope="module")
def k2_instance():
    return synthetic_k2(3000, seed=SEED)


@pytest.fixture(scope="module")
def general_instance():
    return synthetic(1500, seed=SEED, max_classifier_length=3)


@pytest.fixture(scope="module")
def short_instance():
    return private_like_short(1500, seed=SEED)


def test_bench_preprocess_k2(benchmark, k2_instance):
    result = benchmark(lambda: preprocess(k2_instance))
    assert result.report.elapsed_seconds >= 0


def test_bench_k2_solver(benchmark, short_instance):
    result = benchmark(lambda: make_solver("mc3-k2").solve(short_instance))
    assert result.cost > 0


def test_bench_wsc_reduction(benchmark, general_instance):
    prep = preprocess(general_instance)
    components = prep.components
    assert components

    def run():
        return [mc3_to_wsc(component) for component in components]

    instances = benchmark(run)
    assert all(w.num_sets > 0 for w in instances)


def test_bench_greedy_wsc(benchmark, general_instance):
    prep = preprocess(general_instance)
    wsc_instances = [mc3_to_wsc(component) for component in prep.components]

    def run():
        return sum(greedy_wsc(w).cost for w in wsc_instances)

    assert benchmark(run) >= 0


def test_bench_primal_dual_wsc(benchmark, general_instance):
    prep = preprocess(general_instance)
    wsc_instances = [mc3_to_wsc(component) for component in prep.components]

    def run():
        return sum(primal_dual_wsc(w).cost for w in wsc_instances)

    assert benchmark(run) >= 0
