"""Ablation: where Short-First pays off.

Section 4 recommends Short-First for loads where nearly all queries are
short (the paper's fashion slice is 96% short).  This bench sweeps the
short-query share at fixed load size and reports Short-First vs MC3[G];
the gap between the two must stay small at high shares (both are strong
there) and Short-First must never be catastrophically worse.
"""

from conftest import run_once

from repro.experiments import short_first_threshold


def test_short_first_threshold(benchmark):
    figure = run_once(
        benchmark,
        lambda: short_first_threshold(n=1000, seed=0, shares=(0.6, 0.8, 0.95)),
    )
    print()
    print(figure.render())

    sf = figure.series_by_name("Short-First").ys()
    general = figure.series_by_name("MC3[G]").ys()
    assert len(sf) == len(general) >= 2
    # Short-First stays within 10% of MC3[G] across the sweep, and the
    # relative gap shrinks (or stays flat) as the share of short queries
    # grows toward the fashion regime.
    ratios = [s / g for s, g in zip(sf, general)]
    assert all(r <= 1.10 for r in ratios)
    assert ratios[-1] <= ratios[0] + 0.02
