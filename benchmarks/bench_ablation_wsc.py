"""Ablation: the WSC algorithm inside Algorithm 3 — greedy vs LP
rounding vs primal–dual vs the paper's best-of, plus the redundancy
post-pass (our guarantee-safe extension).
"""

import pytest

from conftest import run_once

from repro.datasets import private_like
from repro.reductions import mc3_to_wsc
from repro.preprocess import preprocess
from repro.setcover import greedy_wsc, lp_rounding_wsc, primal_dual_wsc
from repro.solvers import make_solver

N = 1200
SEED = 0


@pytest.fixture(scope="module")
def instance():
    return private_like(N, seed=SEED)


@pytest.mark.parametrize(
    "method", ["greedy", "bucket_greedy", "lp", "primal_dual", "best_of"]
)
def test_wsc_method(benchmark, method, instance):
    solver = make_solver("mc3-general", wsc_method=method)
    result = run_once(benchmark, lambda: solver.solve(instance))
    print(f"\n[{method}] cost={result.cost:g}")
    result.solution.verify(instance)


def test_best_of_dominates_single_arms(instance):
    best = make_solver("mc3-general", wsc_method="best_of").solve(instance).cost
    greedy = make_solver("mc3-general", wsc_method="greedy").solve(instance).cost
    lp = make_solver("mc3-general", wsc_method="lp").solve(instance).cost
    assert best <= min(greedy, lp) + 1e-9


def test_redundancy_prune_effect(benchmark, instance):
    """The prune extension can only lower the f-approximation's cost;
    measure by how much on the primal–dual arm."""
    prep = preprocess(instance)

    def run():
        raw_total = prep.base_cost
        pruned_total = prep.base_cost
        for component in prep.components:
            wsc = mc3_to_wsc(component)
            raw_total += primal_dual_wsc(wsc, prune=False).cost
            pruned_total += primal_dual_wsc(wsc, prune=True).cost
        return raw_total, pruned_total

    raw_total, pruned_total = run_once(benchmark, run)
    print(f"\nprimal-dual raw={raw_total:g} pruned={pruned_total:g}")
    assert pruned_total <= raw_total + 1e-9
