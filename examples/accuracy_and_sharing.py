#!/usr/bin/env python
"""The paper's remaining future-work directions (Section 8), implemented:

1. *Accuracy-aware construction* — classifiers come in (cost, accuracy)
   tiers; a query answered by a conjunction of classifiers multiplies
   their accuracies and must clear a threshold.  Watch the optimal
   structure flip as the threshold rises: cheap singleton chains stop
   clearing the bar and whole-query classifiers take over.

2. *Overlapping construction costs* — labelling work shared between
   classifiers that test the same property.  The additive optimum is a
   starting point; a feasibility-preserving local search then exploits
   sharing.

Run:  python examples/accuracy_and_sharing.py
"""

from repro import MC3Instance, make_solver
from repro.core import query
from repro.extensions import (
    AccuracyAwarePlanner,
    SharedLabelingCost,
    TieredCostModel,
    shared_cost_local_search,
    verify_plan,
)


def accuracy_demo() -> None:
    print("=== accuracy-aware planning (Section 8 future work) ===")
    queries = [query("adidas juventus"), query("adidas chelsea"), query("adidas")]
    # Singletons: cheap at 90%, expensive at 99%.  Whole-query
    # classifiers clear high accuracy alone (fewer variants to learn).
    model = TieredCostModel({
        frozenset(["adidas"]): [(5, 0.90), (12, 0.99)],
        frozenset(["juventus"]): [(5, 0.90), (12, 0.99)],
        frozenset(["chelsea"]): [(5, 0.90), (12, 0.99)],
        frozenset(["adidas", "juventus"]): [(6, 0.95), (9, 0.99)],
        frozenset(["adidas", "chelsea"]): [(6, 0.95), (9, 0.99)],
    })

    print(f"{'threshold':>10} {'cost':>6}  picks")
    for threshold in (0.80, 0.90, 0.95, 0.985):
        planner = AccuracyAwarePlanner(model, threshold=threshold)
        plan = planner.plan(queries)
        verify_plan(plan, queries, model, threshold)
        picks = ", ".join(
            f"{'+'.join(sorted(clf))}@{tier.accuracy:.2f}"
            for clf, tier in sorted(plan.picks.items(), key=lambda kv: sorted(kv[0]))
        )
        print(f"{threshold:>10} {plan.cost:>6g}  {picks}")
    print()
    print("Low thresholds reuse one cheap Adidas classifier everywhere;")
    print("high thresholds flip to per-query conjunction classifiers,")
    print("whose single multiplication clears the bar.")
    print()


def sharing_demo() -> None:
    print("=== overlapping construction costs (Section 8 future work) ===")
    instance = MC3Instance(
        ["adidas juventus", "adidas chelsea", "adidas white"],
        {
            "adidas": 6, "juventus": 6, "chelsea": 6, "white": 2,
            "adidas juventus": 7, "adidas chelsea": 7, "adidas white": 7,
        },
        name="sharing",
    )
    additive = make_solver("mc3-general").solve(instance)
    print(f"additive optimum: {sorted(additive.solution.sorted_labels())} "
          f"at {additive.cost:g}")

    for sigma in (0.0, 0.5, 1.0):
        cost = SharedLabelingCost(instance, sigma=sigma)
        result = shared_cost_local_search(
            instance, cost, additive.solution.classifiers
        )
        print(
            f"  sigma={sigma:3.1f}: shared-cost {result.cost:6.2f} "
            f"(start {result.start_cost:.2f}, {len(result.moves)} moves) "
            f"-> {sorted('+'.join(sorted(c)) for c in result.classifiers)}"
        )
    print()
    print("As sigma grows, classifiers sharing the 'adidas' labelling")
    print("pool get cheaper jointly, and the local search reshapes the")
    print("selection to maximise property reuse.")


def main() -> None:
    accuracy_demo()
    sharing_demo()


if __name__ == "__main__":
    main()
