#!/usr/bin/env python
"""End-to-end e-commerce scenario: incomplete catalog → classifier plan
→ offline completion → complete search results.

This is the workflow the paper's introduction motivates (the 'Shirts'
relation of Figure 1): sellers upload items with partial structured
attributes; search queries silently miss qualifying items; the company
plans the cheapest classifier set covering its query load, trains it,
completes the catalog offline, and search recall jumps to 1.0.

Run:  python examples/ecommerce_catalog.py
"""

import random

from repro.catalog import Catalog, ClassifierPlanner, Item, SearchEngine
from repro.core import query
from repro.datasets import SubAdditiveHashCost

BRANDS = ["adidas", "nike", "umbro", "puma"]
TEAMS = ["juventus", "chelsea", "arsenal", "cska"]
COLORS = ["white", "red", "blue"]


def build_catalog(num_items: int = 300, seed: int = 7) -> Catalog:
    """Soccer shirts with latent truth and ~40% observed attributes
    (sellers fill in only some structured fields, as in Figure 1)."""
    rng = random.Random(seed)
    catalog = Catalog()
    for index in range(num_items):
        brand = rng.choice(BRANDS)
        team = rng.choice(TEAMS)
        color = rng.choice(COLORS)
        latent = {brand, team, color, "shirt"}
        observed = {"shirt"}  # the product type is always structured
        for prop in (brand, team, color):
            if rng.random() < 0.4:
                observed.add(prop)
        catalog.add(
            Item(
                item_id=f"sku{index:04d}",
                title=f"{team.title()} {color} shirt ({brand})",
                latent=latent,
                observed=observed,
            )
        )
    return catalog


def main() -> None:
    catalog = build_catalog()
    print(f"catalog: {len(catalog)} items, "
          f"{catalog.observed_completeness():.0%} of attributes observed")

    # The query load: what users actually search for.
    query_log = [
        query("juventus white adidas"),
        query("chelsea adidas"),
        query("arsenal red"),
        query("cska umbro"),
        query("nike white"),
        query("puma blue chelsea"),
    ]

    # Training costs: property-level base difficulties with sub-additive
    # conjunctions (specific conjunctions have few variants, so they are
    # cheaper to label to the same precision).
    bases = {prop: 5 for prop in BRANDS}
    bases.update({prop: 6 for prop in TEAMS})
    bases.update({prop: 2 for prop in COLORS})
    bases["shirt"] = 1
    cost_model = SubAdditiveHashCost(bases, low=1, high=20, seed=7)

    planner = ClassifierPlanner(catalog, cost_model, solver_name="mc3-general")
    outcome = planner.plan_and_apply(query_log)

    print()
    print("planned classifiers:")
    for clf in sorted(outcome.suite, key=lambda c: c.label):
        print(f"  {clf.label:<28} cost {clf.training_cost:g}")
    print()
    print(outcome.summary())
    print()

    # Show a concrete query before/after (the engine re-runs live).
    engine = SearchEngine(catalog)
    q = query("juventus white adidas")
    truth = {item.item_id for item in catalog.items_with_latent(q)}
    found = set(engine.search(q))
    print(f"'white adidas juventus shirt': {len(found)} of {len(truth)} "
          f"true matches retrieved after completion")
    assert outcome.after.mean_recall == 1.0, "covering classifiers give full recall"
    print("mean recall across the query load: 1.000 — every covered query "
          "now returns complete results.")


if __name__ == "__main__":
    main()
