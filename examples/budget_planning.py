#!/usr/bin/env python
"""Budget planning: how construction cost scales with the query load.

A product team rarely trains classifiers for its whole query log at
once; budgets arrive in quotas.  This example sweeps growing prefixes of
a P-like load (Section 6.1's subset methodology), compares the paper's
algorithm against the naive strategies, and reports the approximation
guarantee Algorithm 3 carries on each sub-instance next to what it
actually achieved (measured against the LP lower bound).

Run:  python examples/budget_planning.py
"""

from repro import make_solver, optimality_report
from repro.datasets import private_like
from repro.experiments import subset_order


def main() -> None:
    load = private_like(n=2000, seed=11)
    order = subset_order(load.n, seed=11)
    print(f"query load: {load.n} queries, k = {load.max_query_length}")
    print()
    header = f"{'n':>6} {'MC3[G]':>10} {'QO':>10} {'PO':>10} {'LP bound':>10} {'gap':>7} {'guar.':>7}"
    print(header)
    print("-" * len(header))

    for size in (250, 500, 1000, 2000):
        sub = load.subset(size, order=order)
        mc3 = make_solver("mc3-general").solve(sub)
        qo = make_solver("query-oriented").solve(sub)
        po = make_solver("property-oriented").solve(sub)

        # The optimality certificate: forced preprocessing cost plus
        # per-component LP relaxation optima bound OPT from below.
        report = optimality_report(sub, mc3.solution)
        print(
            f"{size:>6} {mc3.cost:>10.0f} {qo.cost:>10.0f} {po.cost:>10.0f} "
            f"{report.lower_bound:>10.0f} {report.gap:>6.3f}x "
            f"{report.guarantee:>6.2f}x"
        )

    print()
    print("'gap' is measured cost over the LP lower bound — an upper bound")
    print("on how far MC3[G] is from optimal; 'guar.' is the proven worst-")
    print("case factor min{ln I + ln(k-1) + 1, 2^(k-1)} (Theorem 5.3).")


if __name__ == "__main__":
    main()
