#!/usr/bin/env python
"""Short-query workloads: the exact k = 2 solver and the Short-First
strategy on a fashion-like load (96% of queries have ≤ 2 properties).

Demonstrates Section 4: queries of length ≤ 2 are solvable *optimally*
in polynomial time via the bipartite vertex-cover / max-flow reduction,
and on almost-short loads the best strategy solves the short part
exactly first (Short-First), then covers the long residue.

Run:  python examples/fashion_short_queries.py
"""

from repro import make_solver
from repro.datasets import private_like_category
from repro.core import InstanceStats


def main() -> None:
    instance = private_like_category("fashion", n=1000, seed=3)
    stats = InstanceStats(instance)
    print(f"fashion load: {stats.n} queries, {stats.short_fraction:.0%} of "
          f"length <= 2, max length {stats.max_query_length}")
    print()

    # The short slice alone: solved exactly by Algorithm 2, with all four
    # max-flow kernels agreeing (they compute the same optimum).
    short = instance.restricted_to(lambda q: len(q) <= 2, name="fashion-short")
    print(f"short slice ({short.n} queries), exact optimum per flow kernel:")
    for kernel in ["dinic", "edmonds_karp", "push_relabel", "capacity_scaling"]:
        result = make_solver("mc3-k2", flow_algorithm=kernel).solve(short)
        print(f"  {kernel:<18} cost {result.cost:>8g}   "
              f"({result.elapsed_seconds*1000:.0f} ms)")
    print()

    # The full load: Short-First vs the general solver vs baselines.
    print("full load (including the 4% long queries):")
    for name in ["short-first", "mc3-general", "local-greedy",
                 "query-oriented", "property-oriented"]:
        result = make_solver(name).solve(instance)
        print(f"  {name:<18} cost {result.cost:>8g}")
    print()

    sf = make_solver("short-first").solve(instance)
    print(f"Short-First covered {sf.details['short_queries']} short queries "
          f"optimally (cost {sf.details['short_cost']:g}) and the "
          f"{sf.details['long_queries']} long ones incrementally "
          f"(cost {sf.details['long_incremental_cost']:g}).")


if __name__ == "__main__":
    main()
