#!/usr/bin/env python
"""Evolving workloads and budget caps: the paper's future-work variants.

Part 1 — *incremental planning*: queries arrive in monthly batches;
classifiers already trained are sunk cost.  The incremental planner
solves each batch's residual problem and reports the regret relative to
a clairvoyant from-scratch plan.

Part 2 — *budgeted partial cover* (Section 5.3/8): given a budget that
cannot cover everything, maximise the total importance of fully covered
queries.  Compares the exact optimum (small instance) with the two
heuristics on a sweep of budgets.

Run:  python examples/evolving_workload.py
"""

from repro.datasets import private_like
from repro.experiments import subset_order
from repro.extensions import (
    IncrementalPlanner,
    classifier_greedy_partial_cover,
    exact_partial_cover,
    greedy_partial_cover,
)


def incremental_demo() -> None:
    print("=== incremental planning across 4 monthly batches ===")
    load = private_like(800, seed=21)
    order = subset_order(load.n, seed=21)
    queries = [load.queries[i] for i in order]
    batch_size = len(queries) // 4

    planner = IncrementalPlanner(load.cost, solver_name="mc3-general")
    for month in range(4):
        batch = queries[month * batch_size : (month + 1) * batch_size]
        outcome = planner.add_batch(batch)
        print(
            f"  month {month + 1}: +{len(outcome.new_queries):>3} queries, "
            f"trained {len(outcome.new_classifiers):>3} new classifiers, "
            f"spent {outcome.incremental_cost:>8g} "
            f"(cumulative {planner.total_cost:g})"
        )
    planner.verify()
    replanned = planner.replan()
    print(f"  clairvoyant from-scratch plan would cost {replanned.cost:g}")
    print(f"  regret of incrementality: {planner.regret():.3f}x")
    print()


def budget_demo() -> None:
    print("=== budgeted partial cover (weights = query importance) ===")
    # The exact oracle is exponential, so this part runs on a small
    # short-query slice (the heuristics scale much further).
    load = private_like(60, seed=4).restricted_to(
        lambda q: len(q) <= 2, name="budget-demo"
    ).subset(12)
    weights = {q: (3.0 if len(q) == 1 else 1.0) for q in load.queries}
    total_weight = sum(weights.values())
    full_cost = greedy_partial_cover(load, weights, budget=float("inf")).cost

    header = f"{'budget':>8} {'exact':>8} {'bundle-greedy':>14} {'clf-greedy':>11}"
    print(f"  full coverage costs {full_cost:g}; total weight {total_weight:g}")
    print("  covered weight by algorithm:")
    print("  " + header)
    for fraction in (0.1, 0.25, 0.5, 0.75, 1.0):
        budget = round(full_cost * fraction)
        exact = exact_partial_cover(load, weights, budget=budget)
        bundle = greedy_partial_cover(load, weights, budget=budget)
        clf = classifier_greedy_partial_cover(load, weights, budget=budget)
        print(
            f"  {budget:>8g} {exact.covered_weight:>8g} "
            f"{bundle.covered_weight:>14g} {clf.covered_weight:>11g}"
        )
    print()
    print("  The bundle greedy tracks the optimum closely; the per-")
    print("  classifier greedy misses multi-classifier bundles.")


def main() -> None:
    incremental_demo()
    budget_demo()


if __name__ == "__main__":
    main()
