#!/usr/bin/env python
"""Multi-valued classifiers (Section 5.3): attributes vs properties.

Search properties are often *values* of a shared attribute ("team =
Juventus", "team = Chelsea").  A multi-valued classifier determines the
attribute's value for any item, acting as a binary classifier for every
value at once — worthwhile whenever it is cheaper than the binary
classifiers it subsumes.

This example reproduces the paper's soccer-shirts discussion:
(1) the "only multi-valued" regime, where merging values by attribute
yields a plain MC³ instance over attributes; and (2) the mixed regime,
where multi-valued and binary classifiers compete inside one extended
weighted set cover.

Run:  python examples/multivalued_classifiers.py
"""

from repro import MC3Instance, make_solver
from repro.extensions import AttributeSchema, merge_attributes, solve_with_multivalued


def main() -> None:
    # The paper's two queries, with per-value properties.
    instance = MC3Instance(
        queries=["juventus white adidas", "chelsea adidas"],
        cost={
            "chelsea": 5, "adidas": 5, "juventus": 5, "white": 1,
            "adidas chelsea": 3, "adidas white": 5, "adidas juventus": 3,
            "juventus white": 4, "adidas juventus white": 5,
        },
        name="shirts",
    )
    schema = AttributeSchema({
        "juventus": "team", "chelsea": "team",
        "white": "color",
        "adidas": "brand",
    })

    # Regime 1: only multi-valued classifiers.  Queries become q1 = {team,
    # color, brand}, q2 = {team, brand}; we price the attribute-level
    # classifiers and solve the transformed instance with the standard
    # solver — "exactly the same model" (Section 5.3).
    attribute_costs = {
        "team": 9,            # one model distinguishing all teams
        "color": 2,
        "brand": 6,
        "brand team": 7,      # conjunction classifiers exist here too
        "brand color team": 11,
    }
    merged = merge_attributes(instance, schema, attribute_costs)
    result = make_solver("mc3-general").solve(merged)
    print("only multi-valued classifiers:")
    print(f"  queries -> {[sorted(q) for q in merged.queries]}")
    print(f"  optimal attribute classifiers: {result.solution.sorted_labels()} "
          f"at cost {result.cost:g}")
    print()

    # Regime 2: multi-valued classifiers compete with the binary ones.
    # A team classifier at cost 2 covers both teams' elements in one
    # purchase, and a brand classifier at 3 undercuts the Adidas pairs;
    # only the cheap binary W survives.
    selection = solve_with_multivalued(
        instance, schema, multivalued_costs={"team": 2, "color": 3, "brand": 3}
    )
    print("mixed binary + multi-valued:")
    print(f"  binary selected      : "
          f"{sorted('+'.join(sorted(c)) for c in selection.binary_classifiers)}")
    print(f"  multi-valued selected: {selection.multivalued_attributes}")
    print(f"  total cost           : {selection.cost:g}")
    print()

    binary_only = make_solver("mc3-general").solve(instance)
    print(f"binary-only optimum for comparison: {binary_only.cost:g}")
    if selection.cost < binary_only.cost:
        print("the multi-valued option lowered the total construction cost.")


if __name__ == "__main__":
    main()
