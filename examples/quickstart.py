#!/usr/bin/env python
"""Quickstart: the paper's running example (Example 1.1), end to end.

Two free-text queries over a soccer-shirt catalog —
"white adidas juventus shirt" and "adidas chelsea shirt" — translate to
the conjunctive queries {juventus, white, adidas} and {chelsea, adidas}.
Classifier training costs (in cost units N) come straight from the
paper; the optimal selection is {AC, AJ, W} at cost 7N.

Run:  python examples/quickstart.py
"""

from repro import MC3Instance, make_solver, preprocess

# Classifier costs from Example 1.1 (C=Chelsea, A=Adidas, J=Juventus,
# W=White).  Any combination not listed is unavailable (cost infinity).
COSTS = {
    "chelsea": 5,
    "adidas": 5,
    "juventus": 5,
    "white": 1,
    "adidas chelsea": 3,
    "adidas white": 5,
    "adidas juventus": 3,
    "juventus white": 4,
    "adidas juventus white": 5,
}


def main() -> None:
    instance = MC3Instance(
        queries=["juventus white adidas", "chelsea adidas"],
        cost=COSTS,
        name="example-1.1",
    )

    print(f"instance: {instance.n} queries over {len(instance.properties)} properties")
    print(f"max query length k = {instance.max_query_length}")
    print()

    # Preprocessing alone (Algorithm 1) — on this tiny instance it
    # already prunes dominated classifiers such as JAW.
    prep = preprocess(instance)
    print(f"preprocessing: {prep.report.classifiers_removed_step3} classifiers pruned, "
          f"{len(prep.forced)} forced selections")
    print()

    # Solve with every relevant algorithm and compare.
    for name in ["mc3-general", "exact", "local-greedy", "query-oriented",
                 "property-oriented"]:
        result = make_solver(name).solve(instance)
        labels = ", ".join(result.solution.sorted_labels())
        print(f"{name:>18}: cost {result.cost:>4g}   [{labels}]")

    print()
    optimal = make_solver("exact").solve(instance)
    assert optimal.cost == 7.0, "Example 1.1's optimum is 7N"
    print("The optimum {adidas+chelsea, adidas+juventus, white} = 7N, "
          "exactly as in the paper.")


if __name__ == "__main__":
    main()
