# Convenience targets for the MC3 reproduction.

PYTHON ?= python

# Worker processes for reprolint's parallel per-module pass; output is
# byte-identical to a serial run, so auto-scaling to the host is safe.
LINT_JOBS ?= $(shell nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)

.PHONY: install test bench bench-save experiments experiments-full examples lint analyze clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Bitset-core micro-benchmarks: reference (frozenset) vs. rewritten
# (bitmask) kernels, median timings written to BENCH_core.json.
bench-save:
	$(PYTHON) benchmarks/bench_bitspace.py --save BENCH_core.json
	$(PYTHON) benchmarks/bench_resilience_overhead.py --save BENCH_resilience.json
	$(PYTHON) benchmarks/bench_cache.py --save BENCH_cache.json
	$(PYTHON) benchmarks/bench_setcover_sublinear.py --save BENCH_setcover.json
	$(PYTHON) benchmarks/bench_service.py --save BENCH_service.json

experiments:
	$(PYTHON) -m repro.experiments all

experiments-full:
	$(PYTHON) -m repro.experiments all --full

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

# Uses ruff (configured in pyproject.toml) when it is installed; falls
# back to a bytecode-compilation syntax sweep on minimal environments.
# reprolint (the in-repo determinism & solver-contract linter, see
# docs/devtools.md) is stdlib-only and therefore runs on both paths.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.devtools.reprolint --jobs $(LINT_JOBS) src tests benchmarks

# Whole-program determinism analysis (module graph -> call graph ->
# taint fixpoint; RPL5xx rules) gated against the checked-in baseline:
# any NEW finding fails, and any baseline entry that no longer
# reproduces fails too, so reprolint-baseline.json may only shrink.
analyze:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.devtools.reprolint --analyze --baseline reprolint-baseline.json src

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
