"""Determinism guarantees: identical inputs give identical outputs,
byte for byte, across repeated runs in one process.

(Cross-process determinism additionally relies on never hashing with
PYTHONHASHSEED-sensitive orders; the generators are seeded with strings
and all reducers iterate deterministic structures — these tests catch
in-process regressions, the sample-data tests catch cross-process ones.)
"""

import pytest

from repro.datasets import bestbuy_like, private_like, synthetic
from repro.extensions import greedy_partial_cover
from repro.preprocess import preprocess
from repro.solvers import make_solver
from tests.conftest import random_instance

SOLVERS = [
    "mc3-k2",
    "mc3-general",
    "mc3-sampled",
    "mc3-streaming",
    "short-first",
    "local-greedy",
    "exact",
    "mc3-refined",
]


class TestSolverDeterminism:
    @pytest.mark.parametrize("name", SOLVERS)
    def test_same_solution_twice(self, name):
        instance = random_instance(77, num_properties=7, num_queries=6, max_length=2)
        first = make_solver(name).solve(instance)
        second = make_solver(name).solve(instance)
        assert first.solution.classifiers == second.solution.classifiers
        assert first.cost == second.cost

    def test_general_deterministic_on_generated_data(self):
        instance = private_like(300, seed=5)
        a = make_solver("mc3-general").solve(instance)
        b = make_solver("mc3-general").solve(instance)
        assert a.solution.classifiers == b.solution.classifiers

    def test_sampled_bit_identical_across_jobs(self):
        """The sampled solver's randomness is a pure function of (seed,
        component content), so process-pool dispatch must not change a
        single classifier relative to the sequential run."""
        instance = synthetic(300, seed=5)
        sequential = make_solver("mc3-sampled", seed=11, jobs=1).solve(instance)
        pooled = make_solver("mc3-sampled", seed=11, jobs=4).solve(instance)
        assert sequential.solution.classifiers == pooled.solution.classifiers
        assert sequential.cost == pooled.cost


class TestPreprocessDeterminism:
    def test_same_forced_and_components(self):
        instance = random_instance(31, num_properties=7, num_queries=6, max_length=3)
        a = preprocess(instance)
        b = preprocess(instance)
        assert a.forced == b.forced
        assert [c.queries for c in a.components] == [c.queries for c in b.components]


class TestGeneratorDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: bestbuy_like(150, seed=9),
            lambda: private_like(150, seed=9),
            lambda: synthetic(150, seed=9),
        ],
        ids=["bestbuy", "private", "synthetic"],
    )
    def test_identical_across_calls(self, factory):
        a, b = factory(), factory()
        assert list(a.queries) == list(b.queries)
        q = a.queries[0]
        for clf in a.candidates(q):
            assert a.weight(clf) == b.weight(clf)


class TestExtensionDeterminism:
    def test_partial_cover_deterministic(self):
        instance = private_like(120, seed=2)
        weights = {q: float(len(q)) for q in instance.queries}
        a = greedy_partial_cover(instance, weights, budget=500)
        b = greedy_partial_cover(instance, weights, budget=500)
        assert a.classifiers == b.classifiers
        assert a.covered_weight == b.covered_weight


class TestGreedyTieBreaking:
    """Pins the greedy WSC tie-break: equal cost/fresh ratios resolve by
    lowest set id.  The bitmask rewrite must preserve this — the heap
    entries are (ratio, set_id, ...) tuples, so the pin catches any
    reordering of the tuple fields or a switch to an id-free queue."""

    def test_equal_ratios_resolve_by_lowest_set_id(self):
        from repro.setcover import greedy_wsc
        from tests.test_setcover import build

        # Sets 0, 1, 2 all start at ratio 1.0.  Taking them in id order
        # covers everything with sets 0 and 1; any other tie order needs
        # a third set.
        instance = build(
            [
                (["a", "b"], 2),
                (["c", "d"], 2),
                (["b", "c"], 2),
            ]
        )
        solution = greedy_wsc(instance)
        instance.verify_solution(solution)
        assert solution.set_ids == (0, 1)
        assert solution.cost == 4.0

    def test_tie_break_is_id_not_insertion_payload(self):
        from repro.setcover import greedy_wsc
        from tests.test_setcover import build

        # Same family, registered so the tying pair straddles a cheaper
        # singleton: ids still decide (1 before 3), labels don't matter.
        instance = build(
            [
                (["a", "b"], 2),   # 0: ratio 1.0 — tied
                (["e"], 1),        # 1: ratio 1.0 — tied, wins over 2 and 3
                (["c", "d"], 2),   # 2: ratio 1.0 — tied
                (["b", "c"], 2),   # 3: ratio 1.0 — tied
            ]
        )
        solution = greedy_wsc(instance)
        instance.verify_solution(solution)
        assert solution.set_ids == (0, 1, 2)
        assert solution.cost == 5.0
