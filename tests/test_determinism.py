"""Determinism guarantees: identical inputs give identical outputs,
byte for byte, across repeated runs in one process.

(Cross-process determinism additionally relies on never hashing with
PYTHONHASHSEED-sensitive orders; the generators are seeded with strings
and all reducers iterate deterministic structures — these tests catch
in-process regressions, the sample-data tests catch cross-process ones.)
"""

import pytest

from repro.datasets import bestbuy_like, private_like, synthetic
from repro.extensions import greedy_partial_cover
from repro.preprocess import preprocess
from repro.solvers import make_solver
from tests.conftest import random_instance

SOLVERS = [
    "mc3-k2",
    "mc3-general",
    "short-first",
    "local-greedy",
    "exact",
    "mc3-refined",
]


class TestSolverDeterminism:
    @pytest.mark.parametrize("name", SOLVERS)
    def test_same_solution_twice(self, name):
        instance = random_instance(77, num_properties=7, num_queries=6, max_length=2)
        first = make_solver(name).solve(instance)
        second = make_solver(name).solve(instance)
        assert first.solution.classifiers == second.solution.classifiers
        assert first.cost == second.cost

    def test_general_deterministic_on_generated_data(self):
        instance = private_like(300, seed=5)
        a = make_solver("mc3-general").solve(instance)
        b = make_solver("mc3-general").solve(instance)
        assert a.solution.classifiers == b.solution.classifiers


class TestPreprocessDeterminism:
    def test_same_forced_and_components(self):
        instance = random_instance(31, num_properties=7, num_queries=6, max_length=3)
        a = preprocess(instance)
        b = preprocess(instance)
        assert a.forced == b.forced
        assert [c.queries for c in a.components] == [c.queries for c in b.components]


class TestGeneratorDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: bestbuy_like(150, seed=9),
            lambda: private_like(150, seed=9),
            lambda: synthetic(150, seed=9),
        ],
        ids=["bestbuy", "private", "synthetic"],
    )
    def test_identical_across_calls(self, factory):
        a, b = factory(), factory()
        assert list(a.queries) == list(b.queries)
        q = a.queries[0]
        for clf in a.candidates(q):
            assert a.weight(clf) == b.weight(clf)


class TestExtensionDeterminism:
    def test_partial_cover_deterministic(self):
        instance = private_like(120, seed=2)
        weights = {q: float(len(q)) for q in instance.queries}
        a = greedy_partial_cover(instance, weights, budget=500)
        b = greedy_partial_cover(instance, weights, budget=500)
        assert a.classifiers == b.classifiers
        assert a.covered_weight == b.covered_weight
