"""Tests for the Lagrangian lower bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError
from repro.setcover import (
    exact_wsc,
    lagrangian_lower_bound,
    lagrangian_value,
    lp_lower_bound,
)
from tests.test_setcover import build, random_wsc


class TestLagrangianValue:
    def test_zero_multipliers_bound_is_zero(self):
        instance = build([(["a"], 3)])
        assert lagrangian_value(instance, [0.0]) == 0.0

    def test_wrong_length_rejected(self):
        instance = build([(["a"], 3)])
        with pytest.raises(InvalidInstanceError):
            lagrangian_value(instance, [1.0, 2.0])

    def test_tight_multipliers_reach_optimum(self):
        # One set covering one element at cost 3: y = 3 gives L = 3 = OPT.
        instance = build([(["a"], 3)])
        assert lagrangian_value(instance, [3.0]) == 3.0

    @given(
        st.integers(min_value=0, max_value=200),
        st.lists(st.floats(min_value=0, max_value=5, allow_nan=False), min_size=12, max_size=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_nonnegative_multipliers_are_a_bound(self, seed, raw):
        instance = random_wsc(seed, num_elements=4, num_sets=4)
        multipliers = raw[: instance.universe_size]
        while len(multipliers) < instance.universe_size:
            multipliers.append(0.0)
        value = lagrangian_value(instance, multipliers)
        assert value <= exact_wsc(instance).cost + 1e-9


class TestLagrangianAscent:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_below_optimum_and_below_lp(self, seed):
        instance = random_wsc(seed)
        bound = lagrangian_lower_bound(instance)
        assert bound <= exact_wsc(instance).cost + 1e-6
        assert bound <= lp_lower_bound(instance) + 1e-6

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=15, deadline=None)
    def test_nontrivial_on_random_instances(self, seed):
        """The warm start + ascent should capture a good share of OPT."""
        instance = random_wsc(seed)
        bound = lagrangian_lower_bound(instance)
        optimum = exact_wsc(instance).cost
        assert bound >= 0.3 * optimum

    def test_more_iterations_never_hurt(self):
        instance = random_wsc(9)
        short = lagrangian_lower_bound(instance, iterations=3)
        long = lagrangian_lower_bound(instance, iterations=80)
        assert long >= short - 1e-9
