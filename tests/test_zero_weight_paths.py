"""Zero-weight classifiers through every layer: reductions, flow,
solvers.  Zero weights model already-known properties (Section 2.1) and
preprocessing selections, so every path must handle capacity-0 edges
and free sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost, ZeroedCost, UniformCost
from repro.flow import ALGORITHMS, FlowNetwork
from repro.reductions import mc3_to_bipartite_wvc, solve_bipartite_wvc
from repro.solvers import ExactSolver, GeneralSolver, K2Solver
from tests.conftest import random_instance


class TestZeroCapacityFlow:
    @pytest.mark.parametrize("kernel", sorted(ALGORITHMS))
    def test_zero_capacity_edges_carry_nothing(self, kernel):
        network = FlowNetwork()
        network.add_edge("s", "a", 0)
        network.add_edge("a", "t", 5)
        network.add_edge("s", "t", 2)
        assert ALGORITHMS[kernel](network, "s", "t") == 2


class TestZeroWeightWVC:
    def test_free_singleton_dominates(self):
        cost = TableCost({"x": 0, "y": 3, "x y": 2})
        graph = mc3_to_bipartite_wvc([frozenset(("x", "y"))], cost)
        cover, weight = solve_bipartite_wvc(graph)
        assert weight == 2.0  # XY (2) beats X (0) + Y (3)

    def test_both_singletons_free(self):
        cost = TableCost({"x": 0, "y": 0, "x y": 2})
        graph = mc3_to_bipartite_wvc([frozenset(("x", "y"))], cost)
        _cover, weight = solve_bipartite_wvc(graph)
        assert weight == 0.0


class TestKnownProperties:
    """Section 2.1: known properties get zero-cost classifiers, but mixed
    classifiers keep their price and may still win."""

    def test_zeroed_cost_changes_the_optimum(self):
        base = TableCost({"x": 5, "y": 5, "x y": 4})
        plain = MC3Instance(["x y"], base)
        assert ExactSolver().solve(plain).cost == 4.0

        known_x = MC3Instance(["x y"], ZeroedCost(base, ["x"]))
        # X free: the options are X(0) + Y(5) = 5 vs XY = 4; XY still wins.
        assert ExactSolver().solve(known_x).cost == 4.0

        base2 = TableCost({"x": 5, "y": 3, "x y": 4})
        known_x2 = MC3Instance(["x y"], ZeroedCost(base2, ["x"]))
        assert ExactSolver().solve(known_x2).cost == 3.0  # X free + Y

    def test_paper_example_known_property_keeps_xy_option(self):
        """W(X) = 0 does not strip x from the query: XY may be cheaper
        than Y (Section 2.1's explicit example)."""
        base = TableCost({"x": 0, "y": 9, "x y": 2})
        instance = MC3Instance(["x y"], base)
        result = ExactSolver().solve(instance)
        assert result.cost == 2.0
        assert frozenset(("x", "y")) in result.solution.classifiers

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_solvers_agree_with_known_properties(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=2)
        known = sorted(instance.properties)[:2]
        zeroed = instance.with_cost(ZeroedCost(instance.cost, known))
        exact = ExactSolver().solve(zeroed).cost
        assert K2Solver().solve(zeroed).cost == pytest.approx(exact)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_general_handles_known_properties(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        known = sorted(instance.properties)[:2]
        zeroed = instance.with_cost(ZeroedCost(instance.cost, known))
        result = GeneralSolver().solve(zeroed)
        result.solution.verify(zeroed)
        assert result.cost >= ExactSolver().solve(zeroed).cost - 1e-9
