"""Shrinkable end-to-end fuzzing with composite hypothesis strategies.

These tests intentionally include zero weights, missing classifiers and
duplicate structure — the corners where bookkeeping bugs live.  Failures
shrink to minimal instances (see ``tests/strategies.py``).
"""

import pytest
from hypothesis import given, settings

from repro.core import CoverageChecker
from repro.extensions import instance_guarantee
from repro.preprocess import preprocess
from repro.solvers import ExactSolver, GeneralSolver, K2Solver, LocalGreedySolver
from tests.strategies import k2_instances, mc3_instances


class TestFuzzSolvers:
    @given(mc3_instances(max_queries=5))
    @settings(max_examples=40, deadline=None)
    def test_general_feasible_within_guarantee(self, instance):
        exact = ExactSolver().solve(instance)
        general = GeneralSolver().solve(instance)
        checker = CoverageChecker(instance.queries)
        assert checker.all_covered(general.solution.classifiers)
        assert general.cost >= exact.cost - 1e-9
        assert general.cost <= instance_guarantee(instance) * exact.cost + 1e-6

    @given(k2_instances(max_queries=6))
    @settings(max_examples=40, deadline=None)
    def test_k2_exactness(self, instance):
        exact = ExactSolver().solve(instance)
        k2 = K2Solver().solve(instance)
        assert k2.cost == pytest.approx(exact.cost)

    @given(mc3_instances(max_queries=4, price_all=False))
    @settings(max_examples=30, deadline=None)
    def test_missing_classifiers_still_sound(self, instance):
        exact = ExactSolver().solve(instance)
        general = GeneralSolver().solve(instance)
        local = LocalGreedySolver().solve(instance)
        assert general.cost >= exact.cost - 1e-9
        assert local.cost >= exact.cost - 1e-9

    @given(mc3_instances(max_queries=5))
    @settings(max_examples=30, deadline=None)
    def test_preprocessing_preserves_optimum(self, instance):
        with_prep = ExactSolver().solve(instance).cost
        without = ExactSolver(preprocess_steps=()).solve(instance).cost
        assert with_prep == pytest.approx(without)

    @given(mc3_instances(max_queries=4))
    @settings(max_examples=30, deadline=None)
    def test_zero_weights_never_break_feasibility(self, instance):
        prep = preprocess(instance)
        solution = GeneralSolver().solve(instance).solution
        checker = CoverageChecker(instance.queries)
        assert checker.all_covered(solution.classifiers)
        # Forced zero-weight selections are free in the final pricing.
        zero_forced = [
            clf for clf in prep.forced if instance.weight(clf) == 0
        ]
        assert all(instance.weight(clf) == 0 for clf in zero_forced)
