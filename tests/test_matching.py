"""Tests for Hopcroft–Karp matching and the König vertex cover."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    BipartiteGraph,
    hopcroft_karp,
    konig_vertex_cover,
    maximum_matching_size,
)


def brute_force_matching_size(edges):
    """Maximum matching by exhaustive search (tiny graphs only)."""
    edges = list(set(edges))
    best = 0
    for size in range(len(edges), 0, -1):
        if size <= best:
            break
        for combo in itertools.combinations(edges, size):
            lefts = [u for u, _v in combo]
            rights = [v for _u, v in combo]
            if len(set(lefts)) == size and len(set(rights)) == size:
                best = size
                break
    return best


def random_edges(seed, n_left=5, n_right=5, density=0.4):
    rng = random.Random(seed)
    return [
        (f"l{i}", f"r{j}")
        for i in range(n_left)
        for j in range(n_right)
        if rng.random() < density
    ]


def build_graph(edges):
    graph = BipartiteGraph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


class TestHopcroftKarp:
    def test_perfect_matching(self):
        graph = build_graph([("l0", "r0"), ("l1", "r1")])
        matching = hopcroft_karp(graph)
        assert matching == {"l0": "r0", "l1": "r1"}

    def test_contested_right_node(self):
        graph = build_graph([("l0", "r0"), ("l1", "r0")])
        assert len(hopcroft_karp(graph)) == 1

    def test_augmenting_path_found(self):
        # l0 can take r0 or r1; l1 only r0 — needs an augmenting swap.
        graph = build_graph([("l0", "r0"), ("l0", "r1"), ("l1", "r0")])
        assert len(hopcroft_karp(graph)) == 2

    def test_empty_graph(self):
        assert hopcroft_karp(BipartiteGraph()) == {}

    def test_matching_is_valid(self):
        edges = random_edges(3)
        matching = hopcroft_karp(build_graph(edges))
        edge_set = set(edges)
        assert all((u, v) in edge_set for u, v in matching.items())
        assert len(set(matching.values())) == len(matching)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, seed):
        edges = random_edges(seed)
        assert maximum_matching_size(edges) == brute_force_matching_size(edges)


class TestKonigCover:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_cover_is_valid_and_minimum(self, seed):
        edges = random_edges(seed)
        graph = build_graph(edges)
        left_cover, right_cover = konig_vertex_cover(graph)
        for u, v in edges:
            assert u in left_cover or v in right_cover
        # König: |min vertex cover| == |max matching|.
        assert len(left_cover) + len(right_cover) == len(hopcroft_karp(graph))

    def test_star_graph_covers_center(self):
        graph = build_graph([("l0", "r0"), ("l0", "r1"), ("l0", "r2")])
        left_cover, right_cover = konig_vertex_cover(graph)
        assert left_cover == {"l0"}
        assert right_cover == set()
