"""Tests for the experiment harness: reports, sweeps, and tiny-scale
versions of every figure/table (shape assertions, not absolute values)."""

import pytest

from repro.experiments import (
    FigureResult,
    Series,
    figure_3a,
    figure_3b,
    figure_3c,
    figure_3d,
    figure_3e,
    figure_3f,
    maxflow_comparison,
    preprocessing_steps,
    render_table,
    short_first_threshold,
    subset_order,
    sweep,
    table_1,
    wsc_methods,
)
from repro.datasets import bestbuy_like
from repro.engine.cache import CacheConfig, set_default_cache
from repro.experiments.report import cache_hit_table
from tests.conftest import random_instance


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[2] or "30" in lines[3]

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_figure_result_render(self):
        figure = FigureResult(
            "Fig X", "demo", "n", "cost",
            [Series("s1", [(1, 10.0), (2, 20.0)]), Series("s2", [(1, 5.0)])],
            notes="note",
        )
        text = figure.render()
        assert "Fig X" in text and "s1" in text and "note" in text

    def test_series_lookup(self):
        figure = FigureResult("F", "t", "x", "y", [Series("a", [(1, 1.0)])])
        assert figure.series_by_name("a").ys() == [1.0]
        with pytest.raises(KeyError):
            figure.series_by_name("zz")

    def test_cache_hit_table_empty_without_data(self):
        assert cache_hit_table("n", []) == ""
        assert cache_hit_table("n", [Series("a", [])]) == ""

    def test_cache_hit_table_renders_percentages(self):
        text = cache_hit_table(
            "n", [Series("a", [(1, 0.0), (2, 0.75)]), Series("b", [(2, 1.0)])]
        )
        assert text.startswith("cache hit rate per run:")
        assert "75%" in text and "100%" in text and "0%" in text

    def test_cached_sweep_surfaces_hit_rates_in_figure(self):
        set_default_cache(CacheConfig(backend="memory"))
        try:
            figure = figure_3a(n=24, sizes=[8, 16], seed=0)
        finally:
            set_default_cache(None)
        text = figure.render()
        # Engine-routed solvers (here MC3[S]) report per-run hit rates;
        # whole-instance baselines never touch the component cache and
        # stay out of the table.
        assert "cache hit rate per run:" in text
        assert "MC3[S]" in text.split("cache hit rate per run:")[1]
        assert "%" in text.split("cache hit rate per run:")[1]

    def test_uncached_sweep_keeps_figure_output_unchanged(self):
        # Pin "off" so the assertion holds even when the suite runs with
        # a process-wide default (REPRO_SOLUTION_CACHE=memory in CI).
        set_default_cache(CacheConfig(backend="off"))
        try:
            figure = figure_3a(n=24, sizes=[8, 16], seed=0)
        finally:
            set_default_cache(None)
        assert "cache hit rate" not in figure.render()


class TestRunner:
    def test_subset_order_deterministic_permutation(self):
        order = subset_order(10, seed=3)
        assert sorted(order) == list(range(10))
        assert order == subset_order(10, seed=3)
        assert order != subset_order(10, seed=4)

    def test_sweep_records_costs_and_clamps_sizes(self):
        instance = random_instance(1, num_properties=6, num_queries=5, max_length=2)
        result = sweep(
            instance,
            [("k2", "mc3-k2", {}), ("po", "property-oriented", {})],
            sizes=[2, 5, 999],
        )
        assert result.sizes == [2, 5]
        assert len(result.cost_points("k2")) == 2
        assert all(t >= 0 for _n, t in result.time_points("po"))

    def test_sweep_allows_failures(self):
        instance = random_instance(2, num_properties=6, num_queries=5, max_length=2)
        result = sweep(
            instance,
            [("mixed", "mixed", {})],  # varying costs: Mixed refuses
            sizes=[5],
            allow_failures=True,
        )
        assert result.failures["mixed"]


class TestTable1:
    def test_tiny_table(self):
        table = table_1(bb_n=60, p_n=80, s_n=100, seed=0, cost_sample=20)
        assert len(table.rows) == 3
        rendered = table.render()
        assert "Table 1" in rendered
        assert table.rows[0][1] == 60  # BB query count
        assert table.rows[2][2] <= 50  # synthetic max cost


class TestFigures:
    """Tiny-scale shape checks: who wins, monotonicity, series presence."""

    def test_fig3a_optimal_leq_baselines(self):
        figure = figure_3a(n=120, sizes=[40, 80], seed=0)
        mc3 = figure.series_by_name("MC3[S]")
        mixed = figure.series_by_name("Mixed")
        qo = figure.series_by_name("Query-Oriented")
        po = figure.series_by_name("Property-Oriented")
        assert mc3.ys() == mixed.ys()  # both optimal under uniform costs
        for a, b, c in zip(mc3.ys(), qo.ys(), po.ys()):
            assert a <= b + 1e-9 and a <= c + 1e-9

    def test_fig3b_mc3_wins(self):
        figure = figure_3b(n=400, sizes=[100, 200], seed=0)
        mc3 = figure.series_by_name("MC3[S]").ys()
        qo = figure.series_by_name("Query-Oriented").ys()
        po = figure.series_by_name("Property-Oriented").ys()
        assert all(m <= q + 1e-9 for m, q in zip(mc3, qo))
        assert all(m <= p + 1e-9 for m, p in zip(mc3, po))

    def test_fig3c_two_series(self):
        figure = figure_3c(sizes=[200, 400], seed=0)
        assert {s.name for s in figure.series} == {
            "MC3[S] + preprocessing",
            "MC3[S] w/o preprocessing",
        }
        assert all(t >= 0 for s in figure.series for t in s.ys())

    def test_fig3d_general_wins(self):
        """At this tiny scale baselines can tie within noise, so MC3[G]
        must be within 2% of every competitor and strictly beat the
        naive baselines at the largest size (the full-figure runs at
        n >= 1000 show clear separation)."""
        figure = figure_3d(n=300, sizes=[150, 300], seed=0, fashion_point=False)
        general = figure.series_by_name("MC3[G]").ys()
        for name in ("Local-Greedy", "Query-Oriented", "Property-Oriented"):
            other = figure.series_by_name(name).ys()
            assert all(g <= 1.02 * o for g, o in zip(general, other))
        for name in ("Query-Oriented", "Property-Oriented"):
            assert general[-1] < figure.series_by_name(name).ys()[-1]

    def test_fig3d_fashion_point_prepended(self):
        figure = figure_3d(n=300, sizes=[200], seed=0, fashion_point=True)
        xs = figure.series_by_name("MC3[G]").xs()
        assert xs[0] == 1000  # the fashion slice point

    def test_fig3e_preprocessing_never_hurts_cost(self):
        figure = figure_3e(sizes=[300, 600], seed=0)
        with_prep = figure.series_by_name("MC3[G] + preprocessing").ys()
        without = figure.series_by_name("MC3[G] w/o preprocessing").ys()
        assert all(a <= b + 1e-9 for a, b in zip(with_prep, without))

    def test_fig3f_runs(self):
        figure = figure_3f(sizes=[300], seed=0)
        assert len(figure.series) == 2


class TestAblations:
    def test_maxflow_comparison_all_kernels(self):
        figure = maxflow_comparison(sizes=[300], seed=0)
        assert {s.name for s in figure.series} == {
            "capacity_scaling", "dinic", "edmonds_karp", "push_relabel",
        }

    def test_preprocessing_steps_monotone_cost(self):
        figure = preprocessing_steps(n=300, seed=0)
        costs = figure.series_by_name("cost").ys()
        # More pruning steps never increase the solution cost.
        assert costs[-1] <= costs[0] + 1e-9

    def test_wsc_methods_best_of_wins(self):
        figure = wsc_methods(n=200, seed=0)
        costs = figure.series_by_name("cost").ys()
        best_of = costs[-1]
        assert best_of <= min(costs[:2]) + 1e-9  # beats greedy and lp

    def test_short_first_threshold_runs(self):
        figure = short_first_threshold(n=300, seed=0, shares=(0.7, 0.95))
        assert len(figure.series) == 2
