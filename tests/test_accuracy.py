"""Tests for the accuracy-aware extension (Section 8 future work)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UniformCost, query
from repro.exceptions import InvalidInstanceError, UncoverableQueryError
from repro.extensions import (
    AccuracyAwarePlanner,
    Tier,
    TieredCostModel,
    min_cover_with_accuracy,
    verify_plan,
)
from repro.extensions.accuracy import validate_tiers


class TestTierValidation:
    def test_sorted_and_dominated_dropped(self):
        tiers = validate_tiers(
            frozenset("a"),
            [Tier(5, 0.95), Tier(2, 0.9), Tier(6, 0.94)],
        )
        assert tiers == (Tier(2, 0.9), Tier(5, 0.95))

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            validate_tiers(frozenset("a"), [])

    def test_rejects_bad_accuracy(self):
        with pytest.raises(InvalidInstanceError):
            validate_tiers(frozenset("a"), [Tier(1, 0.0)])
        with pytest.raises(InvalidInstanceError):
            validate_tiers(frozenset("a"), [Tier(1, 1.5)])

    def test_rejects_bad_cost(self):
        with pytest.raises(InvalidInstanceError):
            validate_tiers(frozenset("a"), [Tier(-1, 0.9)])
        with pytest.raises(InvalidInstanceError):
            validate_tiers(frozenset("a"), [Tier(math.inf, 0.9)])


class TestTieredCostModel:
    def test_from_cost_model(self):
        model = TieredCostModel.from_cost_model(
            UniformCost(10.0), [query("a b")],
            accuracies=(0.9, 0.99), multipliers=(1.0, 2.0),
        )
        tiers = model.tiers(frozenset(("a", "b")))
        assert tiers == (Tier(10.0, 0.9), Tier(20.0, 0.99))
        assert frozenset("a") in model

    def test_misaligned_curves_rejected(self):
        with pytest.raises(InvalidInstanceError):
            TieredCostModel.from_cost_model(
                UniformCost(1.0), [query("a")], accuracies=(0.9,), multipliers=(1, 2)
            )


def simple_model():
    """Singletons are cheap but only 0.9-accurate unless upgraded; the
    pair classifier clears a high bar alone."""
    return TieredCostModel({
        frozenset("a"): [Tier(2, 0.90), Tier(5, 0.99)],
        frozenset("b"): [Tier(2, 0.90), Tier(5, 0.99)],
        frozenset(("a", "b")): [Tier(7, 0.95), Tier(9, 0.99)],
    })


class TestMinCoverWithAccuracy:
    def test_low_threshold_prefers_cheap_singletons(self):
        cover = min_cover_with_accuracy(query("a b"), simple_model(), threshold=0.8)
        assert cover is not None
        assert cover.cost == 4.0  # two 0.9 singletons: 0.81 >= 0.8
        assert cover.accuracy == pytest.approx(0.81)

    def test_high_threshold_switches_to_pair(self):
        # 0.9*0.9 = 0.81 < 0.93; 0.99-singletons cost 10; the pair at
        # 0.95 costs 7 and satisfies alone.
        cover = min_cover_with_accuracy(query("a b"), simple_model(), threshold=0.93)
        assert cover is not None
        assert cover.cost == 7.0
        assert len(cover.picks) == 1

    def test_threshold_always_satisfied(self):
        for threshold in (0.5, 0.8, 0.9, 0.95, 0.98):
            cover = min_cover_with_accuracy(
                query("a b"), simple_model(), threshold=threshold
            )
            assert cover is not None
            assert cover.accuracy >= threshold - 1e-12

    def test_infeasible_returns_none(self):
        model = TieredCostModel({frozenset("a"): [Tier(1, 0.9)]})
        assert min_cover_with_accuracy(query("a"), model, threshold=0.95) is None
        assert min_cover_with_accuracy(query("a b"), model, threshold=0.5) is None

    def test_perfect_threshold_needs_perfect_tiers(self):
        model = TieredCostModel({frozenset("a"): [Tier(1, 0.99), Tier(3, 1.0)]})
        cover = min_cover_with_accuracy(query("a"), model, threshold=1.0)
        assert cover is not None
        assert cover.cost == 3.0

    def test_upgrades_priced_incrementally(self):
        model = simple_model()
        bought = {frozenset("a"): Tier(2, 0.90)}
        cover = min_cover_with_accuracy(
            query("a b"), model, threshold=0.8, upgrades=bought
        )
        # a is free at 0.9; only b must be bought.
        assert cover is not None
        assert cover.cost == 2.0

    def test_invalid_threshold(self):
        with pytest.raises(InvalidInstanceError):
            min_cover_with_accuracy(query("a"), simple_model(), threshold=0.0)

    @given(st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force(self, threshold):
        """Exhaustive check over all pick combinations on the toy model."""
        model = simple_model()
        q = query("a b")
        options = []
        for clf in model.classifiers():
            for tier in model.tiers(clf):
                options.append((clf, tier))
        best = math.inf
        for size in range(1, len(options) + 1):
            for combo in itertools.combinations(options, size):
                union = set()
                accuracy = 1.0
                cost = 0.0
                used = set()
                for clf, tier in combo:
                    if clf in used:
                        accuracy = -1  # a classifier is bought once
                        break
                    used.add(clf)
                    union |= clf
                    accuracy *= tier.accuracy
                    cost += tier.cost
                if accuracy >= threshold and union == set(q):
                    best = min(best, cost)
        cover = min_cover_with_accuracy(q, model, threshold=threshold)
        if math.isinf(best):
            assert cover is None
        else:
            assert cover is not None
            # Quantisation is conservative: never cheaper than the true
            # optimum, and on this coarse toy model it finds it exactly.
            assert cover.cost == pytest.approx(best)


class TestPlanner:
    def test_shared_classifier_upgraded_not_rebought(self):
        model = TieredCostModel({
            frozenset("x"): [Tier(4, 0.90), Tier(6, 0.99)],
            frozenset("y"): [Tier(1, 0.99)],
            frozenset("z"): [Tier(1, 0.99)],
            frozenset(("x", "y")): [Tier(20, 0.99)],
            frozenset(("x", "z")): [Tier(20, 0.99)],
        })
        planner = AccuracyAwarePlanner(model, threshold=0.89)
        plan = planner.plan([query("x y"), query("x z")])
        verify_plan(plan, [query("x y"), query("x z")], model, 0.89)
        # X bought once (possibly upgraded), never the expensive pairs.
        assert plan.cost <= 4 + 1 + 1 + 2 + 1e-9

    def test_infeasible_raises(self):
        model = TieredCostModel({frozenset("a"): [Tier(1, 0.9)]})
        planner = AccuracyAwarePlanner(model, threshold=0.99)
        with pytest.raises(UncoverableQueryError):
            planner.plan([query("a")])

    def test_per_query_thresholds(self):
        model = simple_model()
        q = query("a b")
        strict = AccuracyAwarePlanner(
            model, threshold=0.5, per_query_thresholds={q: 0.93}
        ).plan([q])
        lax = AccuracyAwarePlanner(model, threshold=0.5).plan([q])
        assert strict.cost >= lax.cost
        verify_plan(strict, [q], model, 0.5, {q: 0.93})

    def test_plan_accuracy_of_uncoverable_is_zero(self):
        model = simple_model()
        plan = AccuracyAwarePlanner(model, threshold=0.8).plan([query("a")])
        assert plan.accuracy_of(query("a z")) == 0.0

    def test_higher_threshold_costs_more(self):
        model = simple_model()
        costs = []
        for threshold in (0.7, 0.9, 0.97):
            plan = AccuracyAwarePlanner(model, threshold=threshold).plan(
                [query("a b"), query("a")]
            )
            verify_plan(plan, [query("a b"), query("a")], model, threshold)
            costs.append(plan.cost)
        assert costs == sorted(costs)

    def test_verify_plan_catches_low_accuracy(self):
        model = simple_model()
        plan = AccuracyAwarePlanner(model, threshold=0.8).plan([query("a b")])
        with pytest.raises(InvalidInstanceError):
            verify_plan(plan, [query("a b")], model, threshold=0.999)
