"""Tests for the free-text query parser (the intro's translation step)."""

import pytest

from repro.catalog import QueryParser
from repro.exceptions import DatasetError

VOCAB = [
    "adidas", "juventus", "chelsea", "white", "shirt", "long-sleeve",
    "sneakers", "red",
]
SYNONYMS = {
    "juve": "juventus",
    "sneaker": "sneakers",
    "trainers": "sneakers",
    "long sleeved": "long-sleeve",
}


@pytest.fixture
def parser():
    return QueryParser(VOCAB, SYNONYMS)


class TestParse:
    def test_simple_query(self, parser):
        assert parser.parse("white adidas juventus shirt") == frozenset(
            {"white", "adidas", "juventus", "shirt"}
        )

    def test_case_and_punctuation_normalised(self, parser):
        assert parser.parse("White ADIDAS, Juventus!") == frozenset(
            {"white", "adidas", "juventus"}
        )

    def test_synonyms_applied(self, parser):
        assert parser.parse("juve shirt") == frozenset({"juventus", "shirt"})

    def test_multiword_synonym(self, parser):
        assert parser.parse("long sleeved shirt") == frozenset(
            {"long-sleeve", "shirt"}
        )

    def test_compound_property_greedy_match(self, parser):
        assert parser.parse("long sleeve shirt") == frozenset(
            {"long-sleeve", "shirt"}
        )

    def test_unknown_ignored_by_default(self, parser):
        assert parser.parse("cheap white shirt") == frozenset({"white", "shirt"})

    def test_all_unknown_gives_none(self, parser):
        assert parser.parse("cheap fast delivery") is None

    def test_empty_text(self, parser):
        assert parser.parse("") is None

    def test_duplicates_collapse(self, parser):
        assert parser.parse("shirt shirt white") == frozenset({"white", "shirt"})


class TestPolicies:
    def test_keep_policy(self):
        parser = QueryParser(VOCAB, unknown="keep")
        assert parser.parse("mystery shirt") == frozenset({"mystery", "shirt"})

    def test_reject_policy(self):
        parser = QueryParser(VOCAB, unknown="reject")
        assert parser.parse("mystery shirt") is None
        assert parser.parse("white shirt") == frozenset({"white", "shirt"})

    def test_invalid_policy(self):
        with pytest.raises(DatasetError):
            QueryParser(VOCAB, unknown="explode")

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(DatasetError):
            QueryParser([])

    def test_synonym_target_must_exist(self):
        with pytest.raises(DatasetError):
            QueryParser(VOCAB, {"juve": "nonexistent"})


class TestParseLog:
    def test_log_statistics(self, parser):
        queries, report = parser.parse_log(
            [
                "white adidas juventus shirt",
                "juve shirt",
                "cheap delivery",          # no known property -> empty
                "white adidas juventus shirt",  # duplicate query
            ]
        )
        assert report.total == 4
        assert report.parsed == 3
        assert report.empty == 1
        assert len(queries) == 2  # distinct queries only
        assert report.unknown_tokens["cheap"] == 1
        assert 0 < report.coverage <= 1

    def test_reject_counts(self):
        parser = QueryParser(VOCAB, unknown="reject")
        _queries, report = parser.parse_log(["white shirt", "mystery thing"])
        assert report.rejected == 1
        assert report.parsed == 1

    def test_feeds_planner_pipeline(self, parser):
        """Parsed queries slot directly into the MC³ machinery."""
        from repro import MC3Instance, make_solver
        from repro.core import UniformCost

        queries, _report = parser.parse_log(
            ["white adidas shirt", "juve shirt", "red sneakers"]
        )
        instance = MC3Instance(queries, UniformCost(1.0))
        result = make_solver("mc3-general").solve(instance)
        result.solution.verify(instance)
