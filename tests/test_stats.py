"""Tests for instance statistics (backs Table 1)."""

import pytest

from repro.core import InstanceStats, MC3Instance, TableCost, UniformCost


@pytest.fixture
def instance():
    return MC3Instance(
        ["a b", "b c d", "e", "a b"],
        {"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "a b": 6, "b c": 1,
         "c d": 1, "b d": 1, "b c d": 9},
        name="stats-test",
    )


class TestInstanceStats:
    def test_counts(self, instance):
        stats = InstanceStats(instance)
        assert stats.n == 3  # duplicate "a b" collapsed
        assert stats.num_properties == 5
        assert stats.max_query_length == 3

    def test_length_histogram(self, instance):
        stats = InstanceStats(instance)
        assert stats.length_histogram == {1: 1, 2: 1, 3: 1}

    def test_short_fraction(self, instance):
        stats = InstanceStats(instance)
        assert stats.short_fraction == pytest.approx(2 / 3)

    def test_cost_extremes(self, instance):
        stats = InstanceStats(instance)
        assert stats.max_cost == 9.0
        assert stats.min_cost == 1.0

    def test_incidence(self, instance):
        stats = InstanceStats(instance)
        assert stats.incidence == 2  # property b appears in two queries

    def test_as_row(self, instance):
        row = InstanceStats(instance).as_row()
        assert row == {
            "dataset": "stats-test",
            "queries": 3,
            "max_cost": 9.0,
            "max_length": 3,
        }

    def test_describe_renders_every_length(self, instance):
        text = InstanceStats(instance).describe()
        assert "stats-test" in text
        assert "len  1" in text and "len  3" in text
        assert "incidence" in text

    def test_sampling_cap_respected(self):
        instance = MC3Instance(
            [f"p{i} q{i}" for i in range(20)], UniformCost(3.0)
        )
        stats = InstanceStats(instance, sample_costs=2)
        # Uniform costs: any sample gives the same extremes.
        assert stats.max_cost == 3.0 == stats.min_cost


class TestCliAnalyze:
    def test_analyze_generated_dataset(self, capsys):
        from repro.cli import main

        assert main(["analyze", "bestbuy", "--n", "40", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "queries (n)  : 40" in out
        assert "length histogram" in out
