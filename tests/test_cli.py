"""Tests for the ``mc3`` CLI and the experiments CLI."""

import json

import pytest

from repro.cli import main as mc3_main
from repro.core import MC3Instance, save_instance
from repro.experiments.cli import main as experiments_main


@pytest.fixture
def instance_file(tmp_path):
    instance = MC3Instance(
        ["a b", "c"], {"a": 1, "b": 2, "a b": 2.5, "c": 1}, name="cli-test"
    )
    path = tmp_path / "instance.json"
    save_instance(instance, path)
    return path


class TestMc3Cli:
    def test_solve_prints_cost(self, instance_file, capsys):
        assert mc3_main(["solve", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "cost" in out

    def test_solve_writes_solution(self, instance_file, tmp_path, capsys):
        out_path = tmp_path / "solution.json"
        code = mc3_main(
            ["solve", str(instance_file), "--output", str(out_path), "--verbose"]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert "classifiers" in payload and payload["cost"] >= 0

    def test_solve_with_named_solver(self, instance_file, capsys):
        assert mc3_main(["solve", str(instance_file), "--solver", "query-oriented"]) == 0

    def test_stats(self, instance_file, capsys):
        assert mc3_main(["stats", str(instance_file)]) == 0
        assert "queries" in capsys.readouterr().out

    def test_generate_bestbuy(self, tmp_path, capsys):
        out_path = tmp_path / "bb.json"
        code = mc3_main(
            ["generate", "bestbuy", "--n", "30", "--seed", "1", "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()

    def test_generate_materialises_lazy_costs(self, tmp_path):
        out_path = tmp_path / "s.json"
        code = mc3_main(
            ["generate", "synthetic", "--n", "30", "--output", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["queries"]

    def test_generate_too_large_fails_cleanly(self, tmp_path, capsys):
        out_path = tmp_path / "s.json"
        code = mc3_main(
            ["generate", "synthetic", "--n", "30", "--output", str(out_path),
             "--max-entries", "5"]
        )
        assert code == 1
        assert "too large to materialise" in capsys.readouterr().err

    def test_lists(self, capsys):
        assert mc3_main(["solvers"]) == 0
        assert "mc3-general" in capsys.readouterr().out
        assert mc3_main(["datasets"]) == 0
        assert "synthetic" in capsys.readouterr().out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert mc3_main(["stats", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        assert mc3_main(["stats", str(broken)]) == 1


class TestExperimentsCli:
    def test_fig3a_tiny_via_all_flags(self, capsys, monkeypatch):
        # Patch the registry to a tiny run so the test stays fast.
        from repro.experiments import cli as cli_module
        from repro.experiments import figure_3a

        monkeypatch.setitem(
            cli_module.EXPERIMENTS,
            "fig3a",
            lambda seed, full: figure_3a(n=60, sizes=[30, 60], seed=seed),
        )
        assert experiments_main(["fig3a", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out and "MC3[S]" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["not-an-experiment"])
