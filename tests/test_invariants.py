"""Cross-module invariant tests (hypothesis-driven).

These fuzz the whole pipeline at once: random instance → every solver →
the relations that must always hold between their outputs, plus
idempotence/consistency properties of preprocessing and the reductions.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoverageChecker, MC3Instance, UniformCost
from repro.extensions import instance_guarantee
from repro.preprocess import preprocess
from repro.reductions import mc3_to_wsc
from repro.solvers import make_solver
from tests.conftest import random_instance

SEEDS = st.integers(min_value=0, max_value=10_000)


class TestSolverRelations:
    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_exact_lower_bounds_everything(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        exact = make_solver("exact").solve(instance).cost
        for name in ("mc3-general", "short-first", "local-greedy",
                     "query-oriented", "property-oriented"):
            cost = make_solver(name).solve(instance).cost
            assert cost >= exact - 1e-9, f"{name} beat the optimum"

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_general_within_guarantee(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=4)
        exact = make_solver("exact").solve(instance).cost
        general = make_solver("mc3-general").solve(instance).cost
        assert general <= instance_guarantee(instance) * exact + 1e-6

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_query_oriented_upper_bounds_general(self, seed):
        """QO is feasible, so QO >= OPT, and Algorithm 3 stays within
        the instance guarantee of OPT — hence general <= guarantee * QO.
        (The tighter `general <= QO` is *not* a theorem: greedy/LP can
        diverge from the per-query composition, and seeds exist where
        general exceeds QO outright.)"""
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        general = make_solver("mc3-general").solve(instance).cost
        qo = make_solver("query-oriented").solve(instance).cost
        assert general <= instance_guarantee(instance) * qo + 1e-6

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_all_solutions_feasible_by_independent_checker(self, seed):
        instance = random_instance(seed, num_properties=7, num_queries=6, max_length=3)
        checker = CoverageChecker(instance.queries)
        for name in ("mc3-general", "short-first", "local-greedy", "exact"):
            solution = make_solver(name).solve(instance).solution
            assert checker.all_covered(solution.classifiers)


class TestPreprocessingInvariants:
    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_idempotent_on_residual(self, seed):
        """Re-preprocessing a residual component selects nothing new and
        removes nothing that changes its solution cost."""
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        prep = preprocess(instance)
        for component in prep.components:
            again = preprocess(component)
            before = make_solver("exact").solve(component).cost
            after = again.base_cost + sum(
                make_solver("exact").solve(c).cost for c in again.components
            )
            assert after == pytest.approx(before)

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_forced_classifiers_have_finite_original_weight(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        prep = preprocess(instance)
        for clf in prep.forced:
            assert math.isfinite(instance.weight(clf))

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_residual_queries_uncovered_by_forced(self, seed):
        """Every query left in a residual component is genuinely not
        covered by the forced selections alone."""
        from repro.core import is_covered

        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        prep = preprocess(instance)
        for component in prep.components:
            for q in component.queries:
                assert not is_covered(q, prep.forced)

    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_removed_classifiers_unnecessary(self, seed):
        """Solving while honouring the removals yields the same optimum
        as solving without them — removals are truly redundant."""
        instance = random_instance(seed, num_properties=5, num_queries=4, max_length=3)
        baseline = make_solver("exact", preprocess_steps=()).solve(instance).cost
        prepped = make_solver("exact").solve(instance).cost
        assert prepped == pytest.approx(baseline)


class TestReductionInvariants:
    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_wsc_reduction_element_count(self, seed):
        """|U| equals the total query length (Section 5.2's n̂)."""
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        wsc = mc3_to_wsc(instance)
        assert wsc.universe_size == sum(len(q) for q in instance.queries)

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_wsc_sets_respect_membership_rule(self, seed):
        """Element (x, q) ∈ set S iff x ∈ S and S ⊆ q."""
        instance = random_instance(seed, num_properties=5, num_queries=4, max_length=3)
        wsc = mc3_to_wsc(instance)
        queries = list(instance.queries)
        for set_id in range(wsc.num_sets):
            clf = wsc.set_label(set_id)
            for element_id in wsc.set_members(set_id):
                prop, query_index = wsc.element_label(element_id)
                assert prop in clf
                assert clf <= queries[query_index]
