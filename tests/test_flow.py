"""Tests for the max-flow substrate: four kernels, residual network,
minimum cuts.  Random networks are validated against networkx as an
independent oracle."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReductionError, SolverError
from repro.flow import (
    ALGORITHMS,
    FlowNetwork,
    capacity_scaling,
    dinic,
    edmonds_karp,
    max_flow,
    push_relabel,
)

KERNELS = sorted(ALGORITHMS)


def diamond_network():
    """Classic diamond: max flow 2000 via both middle paths + cross edge."""
    network = FlowNetwork()
    network.add_edge("s", "a", 1000)
    network.add_edge("s", "b", 1000)
    network.add_edge("a", "b", 1)
    network.add_edge("a", "t", 1000)
    network.add_edge("b", "t", 1000)
    return network


def random_network(seed: int, num_nodes: int = 8, num_edges: int = 18):
    rng = random.Random(seed)
    network = FlowNetwork()
    graph = nx.DiGraph()
    nodes = list(range(num_nodes))
    for node in nodes:
        network.add_node(node)
        graph.add_node(node)
    for _ in range(num_edges):
        u, v = rng.sample(nodes, 2)
        cap = rng.randint(0, 12)
        network.add_edge(u, v, cap)
        # networkx collapses parallel edges; accumulate capacities.
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] += cap
        else:
            graph.add_edge(u, v, capacity=cap)
    return network, graph


class TestNetwork:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge("a", "b", -1)

    def test_unknown_node(self):
        with pytest.raises(ReductionError):
            FlowNetwork().node_id("missing")

    def test_edges_report_flow(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 5)
        dinic(network, "s", "t")
        (edge,) = network.edges()
        assert edge.capacity == 5
        assert edge.flow == 5

    def test_reset_flow(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 5)
        dinic(network, "s", "t")
        network.reset_flow()
        (edge,) = network.edges()
        assert edge.flow == 0
        assert dinic(network, "s", "t") == 5

    def test_max_finite_capacity_ignores_infinite(self):
        network = FlowNetwork()
        network.add_edge("a", "b", math.inf)
        network.add_edge("b", "c", 7)
        assert network.max_finite_capacity() == 7


@pytest.mark.parametrize("kernel_name", KERNELS)
class TestKernels:
    def kernel(self, name):
        return ALGORITHMS[name]

    def test_single_edge(self, kernel_name):
        network = FlowNetwork()
        network.add_edge("s", "t", 3.5)
        assert self.kernel(kernel_name)(network, "s", "t") == 3.5

    def test_no_path(self, kernel_name):
        network = FlowNetwork()
        network.add_edge("s", "a", 3)
        network.add_node("t")
        assert self.kernel(kernel_name)(network, "s", "t") == 0

    def test_diamond(self, kernel_name):
        network = diamond_network()
        assert self.kernel(kernel_name)(network, "s", "t") == 2000

    def test_bottleneck_path(self, kernel_name):
        network = FlowNetwork()
        network.add_edge("s", "a", 10)
        network.add_edge("a", "b", 2)
        network.add_edge("b", "t", 10)
        assert self.kernel(kernel_name)(network, "s", "t") == 2

    def test_infinite_middle_edges(self, kernel_name):
        """The WVC-reduction shape: finite source/sink edges, infinite
        middle ones."""
        network = FlowNetwork()
        network.add_edge("s", "l1", 4)
        network.add_edge("s", "l2", 6)
        network.add_edge("l1", "r1", math.inf)
        network.add_edge("l2", "r1", math.inf)
        network.add_edge("r1", "t", 7)
        assert self.kernel(kernel_name)(network, "s", "t") == 7

    def test_unbounded_raises(self, kernel_name):
        network = FlowNetwork()
        network.add_edge("s", "a", math.inf)
        network.add_edge("a", "t", math.inf)
        with pytest.raises(SolverError):
            self.kernel(kernel_name)(network, "s", "t")

    def test_source_equals_sink_rejected(self, kernel_name):
        network = FlowNetwork()
        network.add_edge("s", "t", 1)
        with pytest.raises(SolverError):
            self.kernel(kernel_name)(network, "s", "s")

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, kernel_name, seed):
        network, graph = random_network(seed)
        expected = nx.maximum_flow_value(graph, 0, 1) if graph.has_node(1) else 0
        value = self.kernel(kernel_name)(network, 0, 1)
        assert value == pytest.approx(expected)

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=25, deadline=None)
    def test_min_cut_capacity_equals_flow(self, kernel_name, seed):
        network, _graph = random_network(seed)
        value = self.kernel(kernel_name)(network, 0, 1)
        source_side, cut_edges = network.min_cut(0, 1)
        assert 0 in source_side and 1 not in source_side
        assert sum(edge.capacity for edge in cut_edges) == pytest.approx(value)

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=25, deadline=None)
    def test_flow_conservation(self, kernel_name, seed):
        network, _graph = random_network(seed)
        value = self.kernel(kernel_name)(network, 0, 1)
        balance = {}
        for edge in network.edges():
            balance[edge.source] = balance.get(edge.source, 0.0) - edge.flow
            balance[edge.target] = balance.get(edge.target, 0.0) + edge.flow
            assert -1e-9 <= edge.flow <= edge.capacity + 1e-9
        for node, net in balance.items():
            if node == 0:
                assert net == pytest.approx(-value)
            elif node == 1:
                assert net == pytest.approx(value)
            else:
                assert net == pytest.approx(0.0)


class TestFacade:
    def test_unknown_algorithm(self):
        with pytest.raises(SolverError):
            max_flow(diamond_network(), "s", "t", algorithm="nope")

    def test_result_min_cut(self):
        result = max_flow(diamond_network(), "s", "t")
        source_side, cut_edges = result.min_cut()
        assert result.value == 2000
        assert sum(e.capacity for e in cut_edges) == result.value

    def test_min_cut_before_completion_rejected(self):
        network = diamond_network()
        with pytest.raises(ReductionError):
            network.min_cut("s", "t")

    def test_kernels_agree_on_diamond(self):
        values = set()
        for name in KERNELS:
            network = diamond_network()
            values.add(max_flow(network, "s", "t", algorithm=name).value)
        assert values == {2000}
