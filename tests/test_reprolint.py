"""Tests for :mod:`repro.devtools.reprolint`.

Structure:

* paired good/bad fixture snippets per rule id (written into a
  ``src/repro/...`` mirror under ``tmp_path`` so the path scopes
  engage exactly as they do on the real tree);
* suppression-comment handling (`# reprolint: ignore[...]`);
* the JSON reporter schema;
* CLI exit codes, including the checked-in bad fixtures under
  ``tests/fixtures/reprolint/``;
* a self-check asserting the repo itself lints clean, so a CI failure
  reproduces locally with ``make lint``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.reprolint import (
    SYNTAX_ERROR_ID,
    all_rules,
    as_json_document,
    collect_files,
    lint_paths,
    render_json,
    render_text,
)
from repro.devtools.reprolint.cli import main as reprolint_main
from repro.devtools.reprolint.model import extract_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "reprolint"


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def lint(tmp_path: Path, **kwargs):
    return lint_paths([tmp_path], **kwargs)


def rule_ids(result) -> set:
    return {violation.rule_id for violation in result.violations}


# ----------------------------------------------------------------------
# Paired good/bad fixtures per rule
# ----------------------------------------------------------------------

# rule id -> (relative path, bad source, good source).  The bad snippet
# must trigger exactly that rule; the good twin must lint fully clean.
PAIRED_FIXTURES = {
    "RPL101": (
        "src/repro/setcover/newpass.py",
        """
        def drain(pending):
            bucket = {3, 1, 2}
            out = []
            for item in bucket:
                out.append(item)
            return out
        """,
        """
        def drain(pending):
            bucket = {3, 1, 2}
            out = []
            for item in sorted(bucket):
                out.append(item)
            return out
        """,
    ),
    "RPL102": (
        "src/repro/solvers/customsolver.py",
        """
        import time

        class CustomSolver:
            def solve_component(self, component):
                started = time.perf_counter()
                return set(), {"elapsed": time.perf_counter() - started}
        """,
        """
        import time

        class CustomSolver:
            def solve(self, instance):
                started = time.perf_counter()
                return started

            def solve_component(self, component):
                return set(), {}
        """,
    ),
    "RPL103": (
        "src/repro/setcover/tiebreak.py",
        """
        def pick(a_cost, b_cost):
            if a_cost == b_cost:
                return 0
            return 1 if a_cost < b_cost else 2
        """,
        """
        def pick(a_cost, b_cost):
            if a_cost < b_cost:
                return 1
            return 2
        """,
    ),
    "RPL201": (
        "src/repro/setcover/greedy.py",
        """
        def greedy_wsc(instance):
            return frozenset(instance.sets)
        """,
        """
        def greedy_wsc(instance):
            covered = 0
            for mask in instance.member_masks():
                covered |= mask
            return covered
        """,
    ),
    "RPL202": (
        "src/repro/solvers/fallback.py",
        """
        from repro.core.reference import reference_greedy_wsc

        def solve(instance):
            return reference_greedy_wsc(instance)
        """,
        """
        from repro.setcover.greedy import greedy_wsc

        def solve(instance):
            return greedy_wsc(instance)
        """,
    ),
    "RPL203": (
        "src/repro/solvers/fastpath.py",
        """
        from repro.core.kernels.pyjit import greedy_wsc

        def solve(instance):
            return greedy_wsc(instance)
        """,
        """
        from repro.core.kernels import get_backend

        def solve(instance):
            return get_backend().greedy_wsc(instance)
        """,
    ),
    "RPL204": (
        "src/repro/engine/cache.py",
        """
        def key_material(parts):
            blob = []
            for name, mask in parts.items():
                blob.append((name, mask, hash(name)))
            return blob
        """,
        """
        def key_material(parts):
            blob = []
            for name, mask in sorted(parts.items()):
                blob.append((name, mask))
            return blob
        """,
    ),
    "RPL301": (
        "src/repro/solvers/structural.py",
        """
        from repro.solvers.base import ComponentSolver

        class StructuralSolver(ComponentSolver):
            def _solve(self, instance):
                return None, {}
        """,
        """
        from repro.solvers.base import ComponentSolver

        class StructuralSolver(ComponentSolver):
            def solve_component(self, component):
                return set(), {}
        """,
    ),
    "RPL401": (
        "src/repro/extensions/util.py",
        """
        def accumulate(value, seen=[]):
            seen.append(value)
            return seen
        """,
        """
        def accumulate(value, seen=None):
            if seen is None:
                seen = []
            seen.append(value)
            return seen
        """,
    ),
    "RPL402": (
        "src/repro/extensions/guard.py",
        """
        def safe(callback):
            try:
                return callback()
            except:
                return None
        """,
        """
        def safe(callback):
            try:
                return callback()
            except ValueError:
                return None
        """,
    ),
    "RPL404": (
        "src/repro/engine/fixture_guard.py",
        """
        def dispatch(callback):
            try:
                return callback()
            except Exception:
                return None
        """,
        """
        from repro.exceptions import SolverError

        def dispatch(callback):
            try:
                return callback()
            except (SolverError, MemoryError):
                return None
        """,
    ),
}

# RPL302 needs two files (registry + solver module) per scan.
RPL302_REGISTRY = """
from repro.solvers.mysolvers import AlphaSolver

_FACTORIES = {"alpha": AlphaSolver}
"""
RPL302_BAD_MODULE = """
from repro.solvers.base import Solver


class AlphaSolver(Solver):
    name = "alpha"


class BetaSolver(Solver):
    name = "beta"
"""
RPL302_GOOD_MODULE = """
from repro.solvers.base import Solver


class AlphaSolver(Solver):
    name = "alpha"
"""


@pytest.mark.parametrize("rule_id", sorted(PAIRED_FIXTURES))
def test_bad_fixture_triggers_rule(tmp_path, rule_id):
    rel, bad, _good = PAIRED_FIXTURES[rule_id]
    path = write_module(tmp_path, rel, bad)
    result = lint(tmp_path)
    assert rule_id in rule_ids(result), render_text(result)
    flagged = [v for v in result.violations if v.rule_id == rule_id]
    assert all(v.path == str(path) for v in flagged)
    assert all(v.line >= 1 for v in flagged)


@pytest.mark.parametrize("rule_id", sorted(PAIRED_FIXTURES))
def test_good_fixture_is_clean(tmp_path, rule_id):
    rel, _bad, good = PAIRED_FIXTURES[rule_id]
    write_module(tmp_path, rel, good)
    result = lint(tmp_path)
    assert result.ok, render_text(result)


def test_rpl302_unregistered_solver(tmp_path):
    write_module(tmp_path, "src/repro/solvers/registry.py", RPL302_REGISTRY)
    write_module(tmp_path, "src/repro/solvers/mysolvers.py", RPL302_BAD_MODULE)
    result = lint(tmp_path)
    flagged = [v for v in result.violations if v.rule_id == "RPL302"]
    assert len(flagged) == 1
    assert "BetaSolver" in flagged[0].message


def test_rpl302_registered_solver_is_clean(tmp_path):
    write_module(tmp_path, "src/repro/solvers/registry.py", RPL302_REGISTRY)
    write_module(tmp_path, "src/repro/solvers/mysolvers.py", RPL302_GOOD_MODULE)
    result = lint(tmp_path)
    assert result.ok, render_text(result)


def test_rpl302_silent_without_registry_in_scan(tmp_path):
    # A single-module scan cannot evaluate the registry contract.
    write_module(tmp_path, "src/repro/solvers/mysolvers.py", RPL302_BAD_MODULE)
    assert lint(tmp_path).ok


def test_rpl301_is_transitive(tmp_path):
    write_module(
        tmp_path,
        "src/repro/solvers/hierarchy.py",
        """
        from repro.solvers.base import ComponentSolver

        class Intermediate(ComponentSolver):
            def solve_component(self, component):
                return set(), {}

        class Leaf(Intermediate):
            def _solve(self, instance):
                return None, {}
        """,
    )
    result = lint(tmp_path)
    flagged = [v for v in result.violations if v.rule_id == "RPL301"]
    assert len(flagged) == 1
    assert "Leaf" in flagged[0].message


def test_rpl101_annotation_evidence(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/helper.py",
        """
        from typing import Set

        def merge(selected: Set[str]):
            out = []
            for name in selected:
                out.append(name)
            return out
        """,
    )
    assert "RPL101" in rule_ids(lint(tmp_path))


def test_rpl101_order_neutral_wrappers_are_clean(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/neutral.py",
        """
        def labels(classifiers):
            chosen = set(classifiers)
            return sorted(str(c) for c in chosen)

        def biggest(classifiers):
            chosen = frozenset(classifiers)
            return max(len(c) for c in chosen)
        """,
    )
    result = lint(tmp_path)
    assert result.ok, render_text(result)


def test_rpl101_sum_over_set_is_flagged(tmp_path):
    # sum() is deliberately NOT order-neutral: float addition rounds
    # differently per order, which is how hash seeds leak into costs.
    write_module(
        tmp_path,
        "src/repro/engine/floatsum.py",
        """
        def total(weights):
            chosen = set(weights)
            return sum(w for w in chosen)
        """,
    )
    assert "RPL101" in rule_ids(lint(tmp_path))


def test_rpl101_outside_scope_is_clean(tmp_path):
    rel = "src/repro/datasets/sampling.py"  # not a kernel directory
    _rel, bad, _good = PAIRED_FIXTURES["RPL101"]
    write_module(tmp_path, rel, bad)
    assert lint(tmp_path).ok


def test_rpl404_keyboard_interrupt_without_reraise(tmp_path):
    write_module(
        tmp_path,
        "src/repro/devtools/chaos.py",
        """
        def guarded(callback):
            try:
                return callback()
            except KeyboardInterrupt:
                return None
        """,
    )
    flagged = [
        v for v in lint(tmp_path).violations if v.rule_id == "RPL404"
    ]
    assert len(flagged) == 1
    assert "KeyboardInterrupt" in flagged[0].message


def test_rpl404_keyboard_interrupt_with_reraise_is_clean(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/cleanup.py",
        """
        def guarded(callback, release):
            try:
                return callback()
            except (KeyboardInterrupt, SystemExit):
                release()
                raise
        """,
    )
    assert lint(tmp_path).ok, render_text(lint(tmp_path))


def test_rpl404_outside_scope_is_clean(tmp_path):
    rel = "src/repro/extensions/broad.py"  # not the fault-handling perimeter
    _rel, bad, _good = PAIRED_FIXTURES["RPL404"]
    write_module(tmp_path, rel, bad)
    assert lint(tmp_path).ok


def test_rpl102_core_module_import(tmp_path):
    write_module(tmp_path, "src/repro/core/clock.py", "import random\n")
    assert "RPL102" in rule_ids(lint(tmp_path))


def test_syntax_error_is_reported_not_raised(tmp_path):
    write_module(tmp_path, "src/repro/core/broken.py", "def oops(:\n")
    result = lint(tmp_path)
    assert SYNTAX_ERROR_ID in rule_ids(result)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_suppression_comment_silences_named_rule(tmp_path):
    rel, bad, _good = PAIRED_FIXTURES["RPL101"]
    suppressed = bad.replace(
        "for item in bucket:",
        "for item in bucket:  # reprolint: ignore[RPL101] order-free fold",
    )
    write_module(tmp_path, rel, suppressed)
    result = lint(tmp_path)
    assert result.ok
    assert result.suppressed == 1


def test_bare_suppression_silences_all_rules(tmp_path):
    rel, bad, _good = PAIRED_FIXTURES["RPL402"]
    suppressed = bad.replace("except:", "except:  # reprolint: ignore")
    write_module(tmp_path, rel, suppressed)
    assert lint(tmp_path).ok


def test_suppression_for_other_rule_does_not_silence(tmp_path):
    rel, bad, _good = PAIRED_FIXTURES["RPL101"]
    wrong = bad.replace(
        "for item in bucket:",
        "for item in bucket:  # reprolint: ignore[RPL402]",
    )
    write_module(tmp_path, rel, wrong)
    assert "RPL101" in rule_ids(lint(tmp_path))


def test_extract_suppressions_parses_lists():
    table = extract_suppressions(
        "x = 1  # reprolint: ignore[RPL101, RPL103] why\n"
        "y = 2  # reprolint: ignore\n"
    )
    assert table[1] == {"RPL101", "RPL103"}
    assert table[2] == {"*"}


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def test_json_reporter_schema(tmp_path):
    rel, bad, _good = PAIRED_FIXTURES["RPL101"]
    write_module(tmp_path, rel, bad)
    result = lint(tmp_path)
    document = json.loads(render_json(result))
    assert document == as_json_document(result)
    assert document["tool"] == "reprolint"
    assert document["version"] == 1
    assert document["files_scanned"] == 1
    assert document["counts"]["total"] == len(document["violations"])
    assert document["counts"]["suppressed"] == 0
    assert set(document["counts"]["by_rule"]) == {"RPL101"}
    for violation in document["violations"]:
        assert set(violation) == {
            "rule",
            "name",
            "path",
            "line",
            "column",
            "message",
        }


def test_text_reporter_has_locations_and_ids(tmp_path):
    rel, bad, _good = PAIRED_FIXTURES["RPL103"]
    write_module(tmp_path, rel, bad)
    result = lint(tmp_path)
    text = render_text(result)
    assert "RPL103" in text
    violation = result.violations[0]
    assert f"{violation.path}:{violation.line}:" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def materialize_checked_in_fixtures(tmp_path: Path) -> list:
    """Copy ``tests/fixtures/reprolint/*_bad.txt`` into a src mirror.

    Fixtures carry their destination on a ``# dest:`` header line so the
    path scopes engage; they are stored as .txt precisely so the repo
    self-check does not scan them.
    """
    expected = []
    for fixture in sorted(FIXTURE_DIR.glob("*_bad.txt")):
        lines = fixture.read_text(encoding="utf-8").splitlines()
        assert lines[0].startswith("# dest: ")
        dest = lines[0][len("# dest: ") :].strip()
        write_module(tmp_path, dest, "\n".join(lines[1:]) + "\n")
        expected.append(fixture.name.split("_")[0])
    return expected


def test_cli_fails_on_checked_in_bad_fixtures(tmp_path, capsys):
    expected_rules = materialize_checked_in_fixtures(tmp_path)
    assert expected_rules, "no checked-in fixtures found"
    exit_code = reprolint_main([str(tmp_path)])
    output = capsys.readouterr().out
    assert exit_code == 1
    for rule_id in expected_rules:
        assert rule_id in output
    # file:line locations are part of the contract
    for line in output.splitlines()[:-1]:
        assert ".py:" in line


def test_cli_json_format(tmp_path, capsys):
    materialize_checked_in_fixtures(tmp_path)
    exit_code = reprolint_main(["--format", "json", str(tmp_path)])
    document = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert document["counts"]["total"] > 0


def test_cli_select_restricts_rules(tmp_path, capsys):
    materialize_checked_in_fixtures(tmp_path)
    exit_code = reprolint_main(["--select", "RPL402", str(tmp_path)])
    capsys.readouterr()
    assert exit_code == 0  # none of the fixtures violate RPL402


def test_cli_unknown_rule_id_is_usage_error(tmp_path, capsys):
    exit_code = reprolint_main(["--select", "NOPE", str(tmp_path / "missing")])
    capsys.readouterr()
    assert exit_code == 2


def test_cli_no_paths_is_usage_error(capsys):
    assert reprolint_main([]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert reprolint_main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in output


def test_collect_files_skips_caches(tmp_path):
    write_module(tmp_path, "src/repro/__pycache__/junk.py", "x = 1\n")
    good = write_module(tmp_path, "src/repro/ok.py", "x = 1\n")
    assert collect_files([tmp_path]) == [good]


# ----------------------------------------------------------------------
# Self-check: the repo lints clean (CI failures reproduce locally)
# ----------------------------------------------------------------------


def test_repo_is_reprolint_clean():
    result = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    assert result.ok, "\n".join(v.render() for v in result.violations)
    assert result.files_scanned > 100


def test_rule_catalogue_is_documented():
    """Every rule id appears in docs/devtools.md with its rationale."""
    doc = (REPO_ROOT / "docs" / "devtools.md").read_text(encoding="utf-8")
    for rule in all_rules():
        assert rule.rule_id in doc, f"{rule.rule_id} missing from docs/devtools.md"
        assert rule.name in doc, f"{rule.name} missing from docs/devtools.md"
