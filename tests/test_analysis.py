"""Tests for the optimality-certificate analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MC3Instance, make_solver, optimality_report
from repro.core import Solution, save_instance
from repro.exceptions import InfeasibleSolutionError
from tests.conftest import random_instance


class TestOptimalityReport:
    def test_exact_solution_certified(self, example11):
        result = make_solver("exact").solve(example11)
        report = optimality_report(example11, result.solution)
        assert report.gap <= 1.0 + 1e-6
        assert report.certified_optimal
        assert "certified optimal" in report.describe()

    def test_bad_baseline_has_larger_gap(self, example11):
        po = make_solver("property-oriented").solve(example11)
        report = optimality_report(example11, po.solution)
        assert report.gap > 1.5  # 16 vs optimum 7

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=15, deadline=None)
    def test_bound_below_true_optimum(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        exact = make_solver("exact").solve(instance)
        report = optimality_report(instance, exact.solution)
        assert report.lower_bound <= exact.cost + 1e-6
        assert report.gap >= 1.0 - 1e-9
        assert report.guarantee >= 1.0

    def test_infeasible_solution_rejected(self, example11):
        with pytest.raises(InfeasibleSolutionError):
            optimality_report(example11, Solution([], 0.0))

    def test_lp_budget_skips_components(self, example11):
        result = make_solver("exact").solve(example11)
        report = optimality_report(example11, result.solution, lp_size_limit=0)
        # Without LP bounds, only the forced preprocessing cost remains.
        assert report.lp_components == 0
        assert report.lower_bound <= result.cost

    def test_cli_report_gap(self, tmp_path, capsys):
        from repro.cli import main

        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 3})
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        assert main(["solve", str(path), "--report-gap"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out and "proven bound" in out
