"""Scale-invariance tests for the Private-like generator.

The figure-3b margins collapsed at paper scale until the rare-property
tail was made to grow with the log; these tests pin that behaviour so
it cannot regress silently.
"""

import pytest

from repro.datasets import private_like, private_like_category
from repro.datasets.private import tail_size_for


class TestTailScaling:
    def test_tail_size_grows_with_count(self):
        assert tail_size_for(100) == 150  # floor
        assert tail_size_for(1000) == 500
        assert tail_size_for(10_000) == 5000

    def test_property_count_roughly_linear(self):
        small = private_like(1000, seed=0)
        large = private_like(4000, seed=0)
        ratio = len(large.properties) / len(small.properties)
        # Linear tail growth: 4x queries gives roughly 2.5-4.5x properties
        # (head vocabulary is fixed, tail dominates).
        assert 2.0 < ratio < 5.0

    def test_rare_property_density_stable(self):
        """The share of properties appearing in at most 2 queries must
        not collapse as the load grows (the regression that flattened
        Figure 3b at paper scale)."""

        def rare_share(instance):
            from collections import Counter

            counts = Counter(p for q in instance.queries for p in q)
            rare = sum(1 for c in counts.values() if c <= 2)
            return rare / len(counts)

        small = rare_share(private_like(1000, seed=0))
        large = rare_share(private_like(4000, seed=0))
        assert abs(small - large) < 0.2
        assert large > 0.3  # a genuine long tail at scale


class TestCostStabilityAcrossScales:
    def test_tail_property_price_independent_of_n(self):
        """The same tail property costs the same in instances of
        different sizes (per-property RNG streams)."""
        small = private_like_category("fashion", 400, seed=3)
        large = private_like_category("fashion", 1200, seed=3)
        prop = "fashion-t10"
        clf = frozenset((prop,))
        assert small.weight(clf) == large.weight(clf)

    def test_head_property_price_independent_of_n(self):
        small = private_like_category("fashion", 400, seed=3)
        large = private_like_category("fashion", 1200, seed=3)
        clf = frozenset(("nike",))
        assert small.weight(clf) == large.weight(clf)

    def test_pair_price_stable(self):
        small = private_like_category("fashion", 400, seed=3)
        large = private_like_category("fashion", 1200, seed=3)
        clf = frozenset(("nike", "fashion-t3"))
        assert small.weight(clf) == large.weight(clf)
