"""Tests for the single-query minimum-cover DP."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost
from repro.core.mincover import enumerate_covers, min_cover, min_cover_from_model
from repro.core.properties import iter_nonempty_subsets
from repro.exceptions import UncoverableQueryError


def brute_force_min_cover(q, candidates):
    """Optimal single-query cover by exhaustive subset enumeration."""
    usable = [(clf, w) for clf, w in candidates if clf <= q and math.isfinite(w)]
    best = math.inf
    for size in range(len(usable) + 1):
        for combo in itertools.combinations(usable, size):
            union = set()
            for clf, _w in combo:
                union |= clf
            if union == set(q):
                best = min(best, sum(w for _c, w in combo))
    return best


class TestMinCover:
    def test_single_classifier(self):
        cover = min_cover(frozenset("ab"), [(frozenset("ab"), 3.0)])
        assert cover.cost == 3.0
        assert cover.classifiers == (frozenset("ab"),)

    def test_prefers_cheaper_combination(self):
        cover = min_cover(
            frozenset("ab"),
            [(frozenset("ab"), 5.0), (frozenset("a"), 1.0), (frozenset("b"), 1.0)],
        )
        assert cover.cost == 2.0
        assert set(cover.classifiers) == {frozenset("a"), frozenset("b")}

    def test_ignores_non_subset_candidates(self):
        cover = min_cover(
            frozenset("ab"),
            [(frozenset("abc"), 0.5), (frozenset("ab"), 3.0)],
        )
        assert cover.cost == 3.0

    def test_ignores_infinite_candidates(self):
        cover = min_cover(
            frozenset("a"),
            [(frozenset("a"), math.inf), (frozenset("a"), 2.0)],
        )
        assert cover.cost == 2.0

    def test_uncoverable_raises(self):
        with pytest.raises(UncoverableQueryError):
            min_cover(frozenset("ab"), [(frozenset("a"), 1.0)])

    def test_uncoverable_optional(self):
        assert min_cover(frozenset("ab"), [], required=False) is None

    def test_zero_cost_candidates(self):
        cover = min_cover(
            frozenset("ab"), [(frozenset("a"), 0.0), (frozenset("b"), 0.0)]
        )
        assert cover.cost == 0.0

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        props = rng.sample("abcdef", rng.randint(1, 4))
        q = frozenset(props)
        candidates = []
        for clf in iter_nonempty_subsets(q):
            if rng.random() < 0.8:
                candidates.append((clf, float(rng.randint(0, 10))))
        expected = brute_force_min_cover(q, candidates)
        cover = min_cover(q, candidates, required=False)
        if math.isinf(expected):
            assert cover is None
        else:
            assert cover is not None
            assert cover.cost == pytest.approx(expected)
            # The witness itself must be feasible and priced correctly.
            union = set()
            total = 0.0
            weight_of = {}
            for clf, w in candidates:
                weight_of[clf] = min(w, weight_of.get(clf, math.inf))
            for clf in cover.classifiers:
                union |= clf
                total += weight_of[clf]
            assert union == set(q)
            assert total == pytest.approx(cover.cost)

    def test_from_model(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 3})
        cover = min_cover_from_model(frozenset("ab"), instance)
        assert cover.cost == 2.0


class TestEnumerateCovers:
    def candidates(self, table):
        return [(frozenset(k.split()), v) for k, v in table.items()]

    def test_all_irredundant_covers(self):
        covers = enumerate_covers(
            frozenset("ab"),
            self.candidates({"a": 1, "b": 1, "a b": 3}),
        )
        found = {frozenset(c.classifiers) for c in covers}
        assert found == {
            frozenset({frozenset("a"), frozenset("b")}),
            frozenset({frozenset("ab")}),
        }

    def test_redundant_covers_excluded(self):
        covers = enumerate_covers(
            frozenset("ab"), self.candidates({"a": 1, "b": 1})
        )
        assert len(covers) == 1

    def test_unique_cover(self):
        covers = enumerate_covers(frozenset("ab"), self.candidates({"a b": 2}))
        assert len(covers) == 1
        assert covers[0].cost == 2.0

    def test_limit_short_circuits(self):
        covers = enumerate_covers(
            frozenset("abc"),
            self.candidates({"a": 1, "b": 1, "c": 1, "a b": 1, "b c": 1, "a c": 1}),
            limit=2,
        )
        assert len(covers) == 2

    def test_node_budget_returns_conservative_duplicate(self):
        covers = enumerate_covers(
            frozenset("abcde"),
            self.candidates(
                {" ".join(sorted(c)): 1 for c in itertools.chain.from_iterable(
                    itertools.combinations("abcde", size) for size in (1, 2, 3)
                )}
            ),
            node_budget=5,
        )
        # Either nothing was found in budget, or the sentinel duplicate
        # prevents a false "unique cover" conclusion.
        assert len(covers) != 1

    def test_no_cover_returns_empty(self):
        assert enumerate_covers(frozenset("ab"), self.candidates({"a": 1})) == []
