"""Tests for the ``mc3 verify`` and ``mc3 compare`` commands."""

import json

import pytest

from repro.cli import main as mc3_main
from repro.core import MC3Instance, Solution, save_instance, save_solution


@pytest.fixture
def files(tmp_path):
    instance = MC3Instance(
        ["a b", "c"], {"a": 1, "b": 2, "a b": 2.5, "c": 1}, name="vc"
    )
    instance_path = tmp_path / "instance.json"
    save_instance(instance, instance_path)
    good = Solution.from_instance([frozenset(("a", "b")), frozenset("c")], instance)
    good_path = tmp_path / "good.json"
    save_solution(good, good_path)
    bad = Solution([frozenset(("a", "b"))], 2.5)
    bad_path = tmp_path / "bad.json"
    save_solution(bad, bad_path)
    return instance_path, good_path, bad_path


class TestVerifyCommand:
    def test_valid_solution(self, files, capsys):
        instance_path, good_path, _bad = files
        assert mc3_main(["verify", str(instance_path), str(good_path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_solution(self, files, capsys):
        instance_path, _good, bad_path = files
        assert mc3_main(["verify", str(instance_path), str(bad_path)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestCompareCommand:
    def test_default_solver_set(self, files, capsys):
        instance_path, _g, _b = files
        assert mc3_main(["compare", str(instance_path)]) == 0
        out = capsys.readouterr().out
        assert "mc3-general" in out
        assert "property-oriented" in out

    def test_explicit_solvers(self, files, capsys):
        instance_path, _g, _b = files
        code = mc3_main(
            ["compare", str(instance_path), "--solvers", "exact", "query-oriented"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact" in out and "query-oriented" in out

    def test_inapplicable_solver_reported_not_fatal(self, files, capsys):
        instance_path, _g, _b = files
        # k=2 instance actually... "a b"/"c" has k=2, so use mixed, which
        # rejects the varying costs.
        code = mc3_main(["compare", str(instance_path), "--solvers", "mixed"])
        assert code == 0
        assert "SolverError" in capsys.readouterr().out
