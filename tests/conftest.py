"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, FrozenSet, List, Optional, Tuple

import pytest

from repro.core import MC3Instance, TableCost
from repro.core.properties import iter_nonempty_subsets

Classifier = FrozenSet[str]


@pytest.fixture
def example11() -> MC3Instance:
    """The paper's Example 1.1; optimal cost is 7 via {AC, AJ, W}."""
    return MC3Instance(
        queries=["juventus white adidas", "chelsea adidas"],
        cost={
            "chelsea": 5, "adidas": 5, "juventus": 5, "white": 1,
            "adidas chelsea": 3, "adidas white": 5, "adidas juventus": 3,
            "juventus white": 4, "adidas juventus white": 5,
        },
        name="example-1.1",
    )


def random_instance(
    seed: int,
    num_properties: int = 8,
    num_queries: int = 6,
    max_length: int = 3,
    cost_range: Tuple[int, int] = (1, 20),
    all_classifiers: bool = True,
    missing_fraction: float = 0.0,
) -> MC3Instance:
    """A small random instance with an explicit cost table.

    ``all_classifiers=True`` prices every relevant classifier;
    ``missing_fraction`` drops a share of the *non-singleton* classifiers
    (pricing them at infinity) while keeping instances coverable.
    """
    rng = random.Random(seed)
    props = [f"p{i}" for i in range(num_properties)]
    queries = set()
    attempts = 0
    while len(queries) < num_queries and attempts < 1000:
        length = rng.randint(1, max_length)
        queries.add(frozenset(rng.sample(props, length)))
        attempts += 1
    # Iterate queries in sorted order: set order depends on the process
    # hash seed, and it drives both the rng draw sequence (costs) and
    # the instance's query order — a given `seed` must name the same
    # instance in every process.
    ordered = sorted(queries, key=sorted)
    costs: Dict[Classifier, float] = {}
    for q in ordered:
        for clf in iter_nonempty_subsets(q):
            if clf not in costs:
                costs[clf] = rng.randint(*cost_range)
    if missing_fraction > 0:
        for clf in sorted(costs, key=sorted):
            # Singletons stay to preserve coverability.
            if len(clf) > 1 and rng.random() < missing_fraction:
                del costs[clf]
    return MC3Instance(ordered, TableCost(costs), name=f"rand{seed}")


def brute_force_optimum(instance: MC3Instance, max_universe: int = 16) -> float:
    """Exhaustive optimal cost over all classifier subsets (bitmask scan).

    This is the independent oracle the solvers are validated against;
    instances must be tiny (≤ ``max_universe`` relevant classifiers).
    """
    universe = instance.classifier_universe()
    if len(universe) > max_universe:
        raise ValueError(
            f"instance too large for brute force ({len(universe)} classifiers)"
        )
    weights = [instance.weight(clf) for clf in universe]
    # Per-query element masks: which bit positions each classifier covers.
    query_masks: List[Tuple[int, List[int]]] = []
    for q in instance.queries:
        prop_index = {prop: i for i, prop in enumerate(sorted(q))}
        full = (1 << len(prop_index)) - 1
        contributions = []
        for clf in universe:
            mask = 0
            if clf <= q:
                for prop in clf:
                    mask |= 1 << prop_index[prop]
            contributions.append(mask)
        query_masks.append((full, contributions))

    best = math.inf
    for selection in range(1 << len(universe)):
        cost = 0.0
        for index in range(len(universe)):
            if selection & (1 << index):
                cost += weights[index]
                if cost >= best:
                    break
        if cost >= best:
            continue
        feasible = True
        for full, contributions in query_masks:
            covered = 0
            for index in range(len(universe)):
                if selection & (1 << index):
                    covered |= contributions[index]
            if covered != full:
                feasible = False
                break
        if feasible:
            best = cost
    return best


def _covered(q, selected) -> bool:
    remaining = set(q)
    for clf in selected:
        if clf <= q:
            remaining -= clf
    return not remaining
