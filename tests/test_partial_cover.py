"""Tests for the budgeted partial-cover extension (the paper's declared
future work)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, UniformCost
from repro.exceptions import InvalidInstanceError
from repro.extensions import (
    classifier_greedy_partial_cover,
    exact_partial_cover,
    greedy_partial_cover,
)
from tests.conftest import random_instance

ALGORITHMS = [exact_partial_cover, greedy_partial_cover, classifier_greedy_partial_cover]


@pytest.fixture
def small():
    """Three queries with distinctive weights and a tight structure."""
    instance = MC3Instance(
        ["a b", "b c", "d"],
        {"a": 2, "b": 2, "c": 2, "d": 3, "a b": 3, "b c": 3},
        name="partial-small",
    )
    weights = {
        frozenset(("a", "b")): 10.0,
        frozenset(("b", "c")): 4.0,
        frozenset(("d",)): 1.0,
    }
    return instance, weights


class TestValidation:
    def test_negative_budget_rejected(self, small):
        instance, weights = small
        for algorithm in ALGORITHMS:
            with pytest.raises(InvalidInstanceError):
                algorithm(instance, weights, budget=-1)

    def test_negative_weight_rejected(self, small):
        instance, _ = small
        for algorithm in ALGORITHMS:
            with pytest.raises(InvalidInstanceError):
                algorithm(instance, {frozenset(("d",)): -2.0}, budget=5)

    def test_verify_catches_overspend(self, small):
        instance, weights = small
        solution = exact_partial_cover(instance, weights, budget=3)
        bad = type(solution)(
            solution.classifiers, solution.cost, solution.covered_queries,
            solution.covered_weight, budget=solution.cost / 2,
        )
        with pytest.raises(InvalidInstanceError):
            bad.verify(instance, weights)


class TestExact:
    def test_zero_budget_covers_nothing(self, small):
        instance, weights = small
        solution = exact_partial_cover(instance, weights, budget=0)
        assert solution.covered_weight == 0.0
        assert solution.cost == 0.0

    def test_big_budget_covers_everything(self, small):
        instance, weights = small
        solution = exact_partial_cover(instance, weights, budget=100)
        assert solution.covered_queries == frozenset(instance.queries)
        assert solution.covered_weight == 15.0

    def test_tight_budget_prefers_heavy_query(self, small):
        instance, weights = small
        # Budget 3: the AB classifier alone covers the weight-10 query.
        solution = exact_partial_cover(instance, weights, budget=3)
        assert solution.covered_weight == 10.0
        assert frozenset(("a", "b")) in solution.classifiers

    def test_weight_monotone_in_budget(self, small):
        instance, weights = small
        previous = -1.0
        for budget in (0, 2, 3, 4, 6, 8, 100):
            solution = exact_partial_cover(instance, weights, budget=budget)
            solution.verify(instance, weights)
            assert solution.covered_weight >= previous
            previous = solution.covered_weight

    def test_shared_classifier_synergy(self):
        """One mid-cost classifier can complete two queries at once."""
        instance = MC3Instance(
            ["x y", "x z"], {"x": 2, "y": 1, "z": 1, "x y": 9, "x z": 9}
        )
        weights = {frozenset(("x", "y")): 5.0, frozenset(("x", "z")): 5.0}
        solution = exact_partial_cover(instance, weights, budget=4)
        assert solution.covered_weight == 10.0  # X + Y + Z fits exactly


class TestHeuristics:
    @pytest.mark.parametrize("algorithm", [greedy_partial_cover, classifier_greedy_partial_cover])
    @given(st.integers(min_value=0, max_value=120), st.integers(min_value=0, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_feasible_and_never_beats_exact(self, algorithm, seed, budget):
        instance = random_instance(seed, num_properties=5, num_queries=4, max_length=3)
        weights = {q: float(1 + (i % 3)) for i, q in enumerate(instance.queries)}
        heuristic = algorithm(instance, weights, budget=float(budget))
        heuristic.verify(instance, weights)
        optimum = exact_partial_cover(instance, weights, budget=float(budget))
        assert heuristic.covered_weight <= optimum.covered_weight + 1e-9

    def test_bundle_greedy_sees_pairs(self, small):
        instance, weights = small
        solution = greedy_partial_cover(instance, weights, budget=3)
        assert solution.covered_weight == 10.0

    def test_classifier_greedy_blind_to_bundles(self):
        """The per-classifier greedy cannot complete a query that needs
        two new classifiers at once unless one of them completes it."""
        instance = MC3Instance(["x y"], {"x": 1, "y": 1})
        weights = {frozenset(("x", "y")): 5.0}
        solution = classifier_greedy_partial_cover(instance, weights, budget=2)
        bundle = greedy_partial_cover(instance, weights, budget=2)
        assert solution.covered_weight == 0.0  # documented blindness
        assert bundle.covered_weight == 5.0

    def test_free_rider_queries_collected(self):
        """Buying a cover can complete other queries at zero cost."""
        instance = MC3Instance(
            ["x y", "x", "y"], {"x": 2, "y": 2, "x y": 9}
        )
        weights = {
            frozenset(("x", "y")): 1.0,
            frozenset(("x",)): 1.0,
            frozenset(("y",)): 1.0,
        }
        solution = greedy_partial_cover(instance, weights, budget=4)
        assert solution.covered_weight == 3.0

    def test_default_weight_is_one(self):
        instance = MC3Instance(["a"], {"a": 1})
        solution = greedy_partial_cover(instance, {}, budget=1)
        assert solution.covered_weight == 1.0
