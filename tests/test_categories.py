"""Tests for the per-category comparison experiment."""

import pytest

from repro.experiments import category_comparison


class TestCategoryComparison:
    @pytest.fixture(scope="class")
    def table(self):
        return category_comparison(n=200, seed=0)

    def test_one_row_per_category(self, table):
        assert [row[0] for row in table.rows] == ["electronics", "fashion", "home"]

    def test_headers_cover_solvers(self, table):
        assert table.headers[:3] == ["category", "queries", "short"]
        assert "MC3[G]" in table.headers
        assert "Property-Oriented" in table.headers

    def test_mc3_at_most_naive_baselines(self, table):
        mc3_index = table.headers.index("MC3[G]")
        for row in table.rows:
            for baseline in ("Query-Oriented", "Property-Oriented"):
                assert row[mc3_index] <= row[table.headers.index(baseline)] + 1e-9

    def test_render(self, table):
        text = table.render()
        assert "Per-category comparison" in text
        assert "fashion" in text
