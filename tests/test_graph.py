"""Tests for the undirected graph substrate."""

import pytest

from repro.graph import UndirectedGraph, connected_components


class TestUndirectedGraph:
    def test_add_edge_registers_nodes(self):
        g = UndirectedGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g
        assert g.neighbors("a") == {"b"}

    def test_self_loop_ignored(self):
        g = UndirectedGraph()
        g.add_edge("a", "a")
        assert g.neighbors("a") == set()
        assert g.num_edges() == 0

    def test_duplicate_edges_collapse(self):
        g = UndirectedGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert g.num_edges() == 1

    def test_add_path(self):
        g = UndirectedGraph()
        g.add_path(["a", "b", "c"])
        assert g.num_edges() == 2
        assert g.neighbors("b") == {"a", "c"}

    def test_add_path_single_node(self):
        g = UndirectedGraph()
        g.add_path(["a"])
        assert "a" in g
        assert g.num_edges() == 0

    def test_bfs_order_and_reachability(self):
        g = UndirectedGraph()
        g.add_path(["a", "b", "c"])
        g.add_node("z")
        order = g.bfs("a")
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c"}

    def test_bfs_unknown_start(self):
        with pytest.raises(KeyError):
            UndirectedGraph().bfs("missing")

    def test_components(self):
        g = UndirectedGraph()
        g.add_path(["a", "b"])
        g.add_path(["c", "d"])
        g.add_node("e")
        comps = g.components()
        assert sorted(sorted(c) for c in comps) == [["a", "b"], ["c", "d"], ["e"]]

    def test_components_deterministic(self):
        def build():
            g = UndirectedGraph()
            g.add_path(["x", "y"])
            g.add_path(["a", "b", "c"])
            return [sorted(c) for c in g.components()]

        assert build() == build()

    def test_len(self):
        g = UndirectedGraph()
        g.add_path(["a", "b", "c"])
        assert len(g) == 3


class TestConnectedComponents:
    def test_edge_list_helper(self):
        comps = connected_components([("a", "b"), ("b", "c"), ("x", "y")])
        assert sorted(sorted(c) for c in comps) == [["a", "b", "c"], ["x", "y"]]

    def test_empty(self):
        assert connected_components([]) == []
