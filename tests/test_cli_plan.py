"""Tests for the ``mc3 plan`` command and the auto flow-kernel chooser."""

import json
import math

import pytest

from repro.cli import main as mc3_main
from repro.flow import FlowNetwork, choose_algorithm, max_flow
from repro.solvers import K2Solver
from tests.conftest import random_instance


@pytest.fixture
def log_and_costs(tmp_path):
    log = tmp_path / "queries.txt"
    # Duplicates model popularity: "a b" is searched three times.
    log.write_text("a b\na b\na b\nb c\nd\n")
    costs = tmp_path / "costs.csv"
    costs.write_text(
        "classifier,cost\na,4\nb,4\nc,4\nd,1\na+b,5\nb+c,5\n"
    )
    return log, costs


class TestPlanCommand:
    def test_full_coverage_plan(self, log_and_costs, capsys, tmp_path):
        log, costs = log_and_costs
        out = tmp_path / "plan.json"
        code = mc3_main(["plan", str(log), str(costs), "--output", str(out), "--verbose"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "covered       : 3/3 queries" in stdout
        payload = json.loads(out.read_text())
        assert payload["classifiers"]

    def test_budgeted_plan_prefers_good_ratios(self, log_and_costs, capsys):
        log, costs = log_and_costs
        code = mc3_main(["plan", str(log), str(costs), "--budget", "6"])
        assert code == 0
        stdout = capsys.readouterr().out
        # The bundle greedy takes D (ratio 1.0), then AB for the
        # three-times-searched query (ratio 0.6): 4 of 5 searches served.
        assert "spent         : 6" in stdout
        assert "(80.0% of traffic)" in stdout

    def test_plan_with_named_solver(self, log_and_costs, capsys):
        log, costs = log_and_costs
        assert mc3_main(["plan", str(log), str(costs), "--solver", "query-oriented"]) == 0

    def test_missing_cost_file(self, log_and_costs, tmp_path, capsys):
        log, _ = log_and_costs
        code = mc3_main(["plan", str(log), str(tmp_path / "nope.csv")])
        assert code == 1


class TestAutoKernel:
    def test_small_network_uses_edmonds_karp(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 5)
        assert choose_algorithm(network) == "edmonds_karp"

    def test_huge_capacities_use_scaling(self):
        network = FlowNetwork()
        for i in range(100):
            network.add_edge("s", f"m{i}", 10_000_000)
            network.add_edge(f"m{i}", "t", 10_000_000)
        assert choose_algorithm(network) == "capacity_scaling"

    def test_default_is_dinic(self):
        network = FlowNetwork()
        for i in range(100):
            network.add_edge("s", f"m{i}", 2)
            network.add_edge(f"m{i}", "t", 2)
        assert choose_algorithm(network) == "dinic"

    def test_max_flow_accepts_auto(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 7)
        assert max_flow(network, "s", "t", algorithm="auto").value == 7

    def test_k2_solver_accepts_auto(self):
        instance = random_instance(9, num_properties=6, num_queries=5, max_length=2)
        result = K2Solver(flow_algorithm="auto").solve(instance)
        assert result.cost == K2Solver().solve(instance).cost
