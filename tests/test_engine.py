"""Tests for the shared component-solving engine: parallel/sequential
equivalence across every registered solver, engine-level k2 routing,
telemetry structure, and the registry's parameterized factories."""

from typing import Dict, FrozenSet

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost, UniformCost
from repro.core.properties import iter_nonempty_subsets
from repro.engine import (
    EXACT_K2_ROUTE,
    SolveEngine,
    exact_k2_route,
    size_histogram,
    solve_component_k2,
)
from repro.exceptions import ReproError, SolverError
from repro.experiments.runner import sweep, with_jobs
from repro.solvers import (
    GeneralSolver,
    K2Solver,
    available_solvers,
    make_solver,
    solver_parameters,
    supports_parameter,
)


def multi_component_instance(
    seed: int,
    blocks: int = 3,
    queries_per_block: int = 3,
    props_per_block: int = 5,
    min_length: int = 2,
    max_length: int = 3,
    uniform: bool = False,
) -> MC3Instance:
    """An instance that provably decomposes into ``blocks`` components:
    each block draws queries from its own property namespace."""
    import random

    rng = random.Random(f"engine-test-{seed}")
    queries = []
    costs: Dict[FrozenSet[str], float] = {}
    for block in range(blocks):
        props = [f"b{block}p{i}" for i in range(props_per_block)]
        block_queries = set()
        attempts = 0
        while len(block_queries) < queries_per_block and attempts < 200:
            length = rng.randint(min_length, min(max_length, len(props)))
            block_queries.add(frozenset(rng.sample(props, length)))
            attempts += 1
        # Cost is a pure function of (seed, classifier), so the instance
        # is identical regardless of set-iteration order / hash seed.
        for q in sorted(block_queries, key=sorted):
            queries.append(q)
            for clf in iter_nonempty_subsets(q):
                key = (seed,) + tuple(sorted(clf))
                costs.setdefault(
                    clf, float(random.Random(repr(key)).randint(1, 20))
                )
    if uniform:
        return MC3Instance(queries, UniformCost(1.0), name=f"multi{seed}-uniform")
    return MC3Instance(queries, TableCost(costs), name=f"multi{seed}")


def instance_for(name: str, seed: int) -> MC3Instance:
    """A multi-component instance inside the solver's domain."""
    if name == "mixed":
        return multi_component_instance(seed, max_length=2, uniform=True)
    if name == "mc3-k2":
        return multi_component_instance(seed, max_length=2)
    return multi_component_instance(seed)


class TestParallelSequentialEquivalence:
    """ISSUE satellite: ``jobs=4`` must return the identical solution
    (cost and classifier set) as ``jobs=1`` for every registered solver
    on multi-component instances."""

    @pytest.mark.parametrize("name", available_solvers())
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=4, deadline=None)
    def test_jobs4_matches_jobs1(self, name, seed):
        instance = instance_for(name, seed)
        try:
            sequential = make_solver(name, jobs=1).solve(instance)
        except ReproError as exc:
            with pytest.raises(type(exc)):
                make_solver(name, jobs=4).solve(instance)
            return
        parallel = make_solver(name, jobs=4).solve(instance)
        assert parallel.solution.classifiers == sequential.solution.classifiers
        assert parallel.cost == sequential.cost

    def test_parallel_uses_process_pool(self):
        instance = multi_component_instance(1, blocks=4)
        result = GeneralSolver(jobs=4).solve(instance)
        engine = result.details["engine"]
        assert engine["mode"] == "process-pool"
        assert engine["jobs"] == 4

    def test_single_component_stays_sequential(self):
        instance = multi_component_instance(2, blocks=1)
        result = GeneralSolver(jobs=4).solve(instance)
        assert result.details["engine"]["mode"] == "sequential"


class TestEngineTelemetry:
    def test_structure(self):
        instance = multi_component_instance(3, blocks=3)
        result = GeneralSolver().solve(instance)
        engine = result.details["engine"]
        assert set(engine) >= {
            "jobs",
            "mode",
            "preprocess_seconds",
            "solve_seconds",
            "merge_seconds",
            "component_sizes",
            "component_seconds",
            "component_size_histogram",
            "routed",
        }
        assert len(engine["component_sizes"]) == len(engine["component_seconds"])
        assert len(engine["component_sizes"]) == result.details["components"]
        assert engine["preprocess_seconds"] >= 0.0
        assert sum(engine["component_size_histogram"].values()) == (
            result.details["components"]
        )

    def test_size_histogram_buckets(self):
        assert size_histogram([1, 1, 2, 3, 4, 5, 8, 9]) == {
            "1": 2,
            "2": 1,
            "3-4": 2,
            "5-8": 2,
            "9-16": 1,
        }
        assert size_histogram([]) == {}


class TestK2Routing:
    def test_route_matches_only_short_components(self):
        route = exact_k2_route()
        short = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 3})
        long_ = MC3Instance(["a b c"], UniformCost(1.0))
        assert route.matches(short)
        assert not route.matches(long_)

    def test_route_agrees_with_k2_solver(self):
        instance = multi_component_instance(3, max_length=2)
        k2_cost = K2Solver().solve(instance).cost
        dispatched = GeneralSolver(dispatch_k2=True).solve(instance)
        assert dispatched.details["components"] >= 2  # preprocessing left work
        assert dispatched.cost == pytest.approx(k2_cost)
        assert dispatched.details["k2_dispatched"] == (
            dispatched.details["components"]
        )
        assert dispatched.details["engine"]["routed"] == {
            EXACT_K2_ROUTE: dispatched.details["components"]
        }

    def test_solve_component_k2_handles_singletons(self):
        component = MC3Instance(["a", "a b"], {"a": 2, "b": 1, "a b": 9})
        classifiers, details = solve_component_k2(component)
        assert frozenset(("a",)) in classifiers
        assert "flow_value" in details

    def test_general_no_longer_imports_k2(self):
        """The general↔k2 circular dependency is gone: the general
        solver's module must not import the k2 solver module (k2
        dispatch goes through the engine's routing rule instead)."""
        import ast
        import inspect

        import repro.solvers.general as general_module

        tree = ast.parse(inspect.getsource(general_module))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                assert "k2" not in (node.module or ""), ast.dump(node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    assert "k2" not in alias.name, alias.name

    def test_dispatch_k2_parallel_matches_sequential(self):
        instance = multi_component_instance(5)
        a = GeneralSolver(dispatch_k2=True, jobs=1).solve(instance)
        b = GeneralSolver(dispatch_k2=True, jobs=4).solve(instance)
        assert a.solution.classifiers == b.solution.classifiers


class TestEngineDirectly:
    def test_engine_runs_a_custom_component_solver(self):
        """The contract is structural: anything with name +
        solve_component works, no Solver subclass needed."""

        class QueryOriented:
            name = "test-qo"

            def solve_component(self, component):
                return {frozenset(q) for q in component.queries}, {}

        instance = multi_component_instance(6)
        engine = SolveEngine()
        solution, details = engine.run(instance, QueryOriented())
        solution.verify(instance)
        assert details["components"] >= 1


class TestPreprocessStepsKnob:
    """ISSUE satellite: RefinedSolver and ShortFirstSolver expose the
    same ``preprocess_steps`` knob as the other solvers, so the Figure
    3e/3f ablation can cover all solvers uniformly."""

    @pytest.mark.parametrize(
        "name",
        ["mc3-k2", "mc3-general", "exact", "mc3-robust", "mc3-refined", "short-first"],
    )
    def test_knob_exposed_and_functional(self, name):
        assert supports_parameter(name, "preprocess_steps")
        instance = instance_for(name, 7)
        with_prep = make_solver(name).solve(instance)
        without = make_solver(name, preprocess_steps=()).solve(instance)
        without.solution.verify(instance)
        # Both runs are feasible; the exact solvers stay optimal.
        if name in ("mc3-k2", "exact"):
            assert with_prep.cost == pytest.approx(without.cost)


class TestRegistryFactories:
    def test_every_solver_accepts_jobs(self):
        for name in available_solvers():
            assert supports_parameter(name, "jobs"), name

    def test_solver_parameters_lists_passthrough(self):
        params = solver_parameters("mc3-refined")
        assert "wsc_method" in params  # forwarded to GeneralSolver
        assert "max_rounds" in params

    def test_unknown_kwarg_raises_solver_error(self):
        with pytest.raises(SolverError, match="does not accept"):
            make_solver("property-oriented", dispatch_k2=True)

    def test_sweep_with_jobs_matches_plain_sweep(self):
        instance = multi_component_instance(8)
        specs = [("general", "mc3-general", {}), ("qo", "query-oriented", {})]
        plain = sweep(instance, specs, sizes=[4, instance.n], seed=3)
        fanned = sweep(instance, specs, sizes=[4, instance.n], seed=3, jobs=2)
        assert fanned.costs == plain.costs

    def test_with_jobs_respects_explicit_spec(self):
        assert with_jobs({"jobs": 3}, 8) == {"jobs": 3}
        assert with_jobs({}, 8) == {"jobs": 8}
        assert with_jobs({}, 1) == {}
