"""The pluggable kernel-backend layer (registry + cross-backend identity).

Three contracts are under test:

* **registry semantics** — choice resolution (explicit name / ``auto`` /
  ``None``), the ``use_backend`` scoping stack, the process default, the
  import-time environment default, memoization, and the availability
  gate for the optional numpy backend;
* **bit-identity across backends** — every registered backend must
  return *exactly* the same selections, tie-breaks, and costs as every
  other on all four batch kernels (the reference-kernel oracle is
  exercised separately in ``test_bitspace.py``);
* **threading** — the backend choice a caller makes (solver kwarg,
  ``use_backend`` block, per-route override) must reach the kernels and
  surface in engine telemetry.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, UniformCost
from repro.core.kernels import (
    AUTO,
    available_backends,
    backend_available,
    backend_choices,
    current_backend_name,
    describe,
    get_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.core.kernels import registry as kernel_registry
from repro.datasets import synthetic
from repro.engine.routing import exact_k2_route
from repro.exceptions import SolverError
from repro.solvers import GeneralSolver, make_solver
from tests.test_setcover import random_wsc

ARRAY_AVAILABLE = backend_available("array")

needs_array = pytest.mark.skipif(
    not ARRAY_AVAILABLE, reason="array backend needs numpy >= 2"
)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_choices_and_availability(self):
        choices = backend_choices()
        assert "pyjit" in choices
        assert "array" in choices
        assert AUTO in choices
        assert backend_available("pyjit")
        assert "pyjit" in available_backends()
        assert not backend_available("no-such-backend")

    def test_unknown_choice_raises(self):
        with pytest.raises(SolverError, match="unknown kernel backend"):
            resolve_backend_name("vulkan")
        with pytest.raises(SolverError, match="unknown kernel backend"):
            get_backend("vulkan")

    def test_default_is_pyjit(self):
        # No env var, no process override, no active use_backend block
        # in this suite's process: None resolves to the conservative
        # pure-python backend.
        if kernel_registry._ENV_CHOICE is None:
            assert resolve_backend_name(None) == "pyjit"

    def test_auto_tracks_availability(self):
        expected = "array" if ARRAY_AVAILABLE else "pyjit"
        assert resolve_backend_name(AUTO) == expected

    def test_get_backend_is_memoized(self):
        assert get_backend("pyjit") is get_backend("pyjit")

    def test_describe_lists_all_kernels(self):
        info = describe(get_backend("pyjit"))
        assert info["name"] == "pyjit"
        assert info["kernels"] == [
            "dominated_pruning",
            "greedy_wsc",
            "bucket_greedy_wsc",
            "min_cover_dp",
            "sampled_gains",
        ]

    def test_use_backend_scopes_and_nests(self):
        outer = current_backend_name()
        with use_backend("pyjit"):
            assert current_backend_name() == "pyjit"
            if ARRAY_AVAILABLE:
                with use_backend("array"):
                    assert current_backend_name() == "array"
                assert current_backend_name() == "pyjit"
        assert current_backend_name() == outer

    def test_use_backend_none_is_a_no_op(self):
        before = current_backend_name()
        with use_backend(None):
            assert current_backend_name() == before

    def test_use_backend_resolves_auto_on_entry(self):
        with use_backend(AUTO):
            assert current_backend_name() in ("pyjit", "array")
            assert current_backend_name() != AUTO

    def test_set_default_backend_round_trips(self):
        before = current_backend_name()
        try:
            set_default_backend("pyjit")
            assert current_backend_name() == "pyjit"
            # An explicit scope still wins over the process default.
            if ARRAY_AVAILABLE:
                with use_backend("array"):
                    assert current_backend_name() == "array"
        finally:
            set_default_backend(None)
        assert current_backend_name() == before

    def test_env_choice_feeds_the_default(self, monkeypatch):
        # The env var is sampled once at import; the default chain reads
        # the sampled value, so patching it models a process started
        # with REPRO_KERNEL_BACKEND set.
        monkeypatch.setattr(kernel_registry, "_ENV_CHOICE", "pyjit")
        monkeypatch.setattr(kernel_registry, "_PROCESS_CHOICE", None)
        assert resolve_backend_name(None) == "pyjit"
        # An explicit process default overrides the environment.
        monkeypatch.setattr(kernel_registry, "_PROCESS_CHOICE", "pyjit")
        assert resolve_backend_name(None) == "pyjit"

    def test_unavailable_backend_is_hidden_and_raises(self, monkeypatch):
        # Simulate a numpy-less host: the array module is importable but
        # reports unavailability, and the registry holds no memoized
        # instance that could bypass the probe.
        from repro.core.kernels import array as array_module

        monkeypatch.setattr(array_module, "NUMPY_AVAILABLE", False)
        monkeypatch.setattr(kernel_registry, "_INSTANCES", {})
        assert not backend_available("array")
        assert "array" not in available_backends()
        assert resolve_backend_name(AUTO) == "pyjit"
        with pytest.raises(SolverError, match="not available"):
            get_backend("array")

    def test_reserved_auto_name(self):
        with pytest.raises(SolverError, match="reserved"):
            kernel_registry.register_backend(AUTO, lambda: None)


# ----------------------------------------------------------------------
# Cross-backend bit-identity
# ----------------------------------------------------------------------


def _dp_case(seed: int, bits: int, num_candidates: int, negative: bool):
    rng = random.Random(f"kernels-dp-{seed}")
    full = (1 << bits) - 1
    low = -2.0 if negative else 0.0
    usable = []
    for _ in range(num_candidates):
        mask = rng.randint(1, full)
        usable.append((mask, rng.uniform(low, 5.0)))
    return full, usable


def _brute_force_cover(full, usable):
    best = math.inf
    best_count = None
    for combo in range(1 << len(usable)):
        union = 0
        cost = 0.0
        count = 0
        for idx, (mask, weight) in enumerate(usable):
            if combo >> idx & 1:
                union |= mask
                cost += weight
                count += 1
        if union == full and cost < best:
            best = cost
            best_count = count
    return None if math.isinf(best) else (best, best_count)


@needs_array
class TestCrossBackendIdentity:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_greedy_wsc_identical(self, seed):
        instance = random_wsc(seed, num_elements=3 + seed % 9, num_sets=1 + seed % 12)
        pure = get_backend("pyjit").greedy_wsc(instance)
        arr = get_backend("array").greedy_wsc(instance)
        assert list(pure.set_ids) == list(arr.set_ids)
        assert pure.cost == arr.cost

    @given(seed=st.integers(0, 10_000), epsilon=st.sampled_from([0.05, 0.1, 0.5]))
    @settings(max_examples=40, deadline=None)
    def test_bucket_greedy_wsc_identical(self, seed, epsilon):
        instance = random_wsc(seed, num_elements=3 + seed % 9, num_sets=1 + seed % 12)
        pure = get_backend("pyjit").bucket_greedy_wsc(instance, epsilon=epsilon)
        arr = get_backend("array").bucket_greedy_wsc(instance, epsilon=epsilon)
        assert list(pure.set_ids) == list(arr.set_ids)
        assert pure.cost == arr.cost

    @given(
        seed=st.integers(0, 10_000),
        bits=st.integers(1, 7),
        num_candidates=st.integers(0, 8),
        negative=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_min_cover_dp_identical(self, seed, bits, num_candidates, negative):
        full, usable = _dp_case(seed, bits, num_candidates, negative)
        pure = get_backend("pyjit").min_cover_dp(full, usable)
        arr = get_backend("array").min_cover_dp(full, usable)
        assert pure == arr
        if not negative:
            # Against the brute-force oracle: optimal cost, and the DP's
            # fewer-sets tie-break can never use more sets than some
            # optimum.
            brute = _brute_force_cover(full, usable)
            if brute is None:
                assert pure is None
            else:
                cost, chosen = pure
                # The DP accumulates along its path, the oracle in index
                # order — same optimum, possibly different float
                # association, so compare with tolerance here (the
                # backend-vs-backend check above stays exact).
                assert math.isclose(cost, brute[0], rel_tol=1e-9, abs_tol=1e-9)
                total = sum(usable[idx][1] for idx in chosen)
                assert math.isclose(total, cost, rel_tol=1e-9, abs_tol=1e-9)
                union = 0
                for idx in chosen:
                    union |= usable[idx][0]
                assert union == full

    @given(
        seed=st.integers(0, 10_000),
        bits=st.integers(1, 80),
        num_masks=st.integers(0, 12),
        covered_none=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sampled_gains_identical(self, seed, bits, num_masks, covered_none):
        rng = random.Random(f"kernels-gains-{seed}")
        full = (1 << bits) - 1
        masks = [rng.randint(1, full) for _ in range(num_masks)]
        covered = 0 if covered_none else rng.randint(0, full)
        pure = get_backend("pyjit").sampled_gains(masks, covered)
        arr = get_backend("array").sampled_gains(masks, covered)
        assert pure == arr
        # Exact-count oracle: fresh coverage is a popcount over ~covered.
        assert pure == [bin(mask & ~covered & full).count("1") for mask in masks]

    def test_min_cover_dp_trivial_and_unreachable(self):
        for name in available_backends():
            backend = get_backend(name)
            assert backend.min_cover_dp(0, [(1, 1.0)]) == (0.0, [])
            assert backend.min_cover_dp(0b111, [(0b001, 1.0)]) is None
            assert backend.min_cover_dp(0b11, []) is None

    def test_wide_masks_delegate_to_pyjit(self, monkeypatch):
        # Masks past the int64 guard must take the pure-python path
        # inside the array backend (arbitrary-width ints).  The guard is
        # dispatch-only — a 2^70 dense DP table is unbuildable — so
        # assert the delegation itself.
        from repro.core.kernels import array as array_module

        calls = {}

        def probe(full, usable):
            calls["args"] = (full, tuple(usable))
            return (0.0, [])

        monkeypatch.setattr(array_module.pyjit, "min_cover_dp", probe)
        full = (1 << 70) - 1
        assert array_module.min_cover_dp(full, [(full, 1.0)]) == (0.0, [])
        assert calls["args"][0] == full

    @given(seed=st.integers(0, 400))
    @settings(max_examples=12, deadline=None)
    def test_solver_pipeline_identical_across_backends(self, seed):
        # End-to-end: the full GeneralSolver pipeline (preprocessing with
        # dominated pruning, reduction, WSC) under each backend.
        instance = synthetic(n=60, seed=seed)
        results = {}
        for name in available_backends():
            solver = make_solver(
                "mc3-general", backend=name, preprocess_steps=(1, 2, 3)
            )
            results[name] = solver.solve(instance)
        baseline = results["pyjit"]
        for name, result in results.items():
            assert result.solution.classifiers == baseline.solution.classifiers, name
            assert result.cost == baseline.cost, name


# ----------------------------------------------------------------------
# Threading the choice through solvers, scopes, and routes
# ----------------------------------------------------------------------


class TestBackendThreading:
    def test_solver_kwarg_reaches_engine_telemetry(self):
        instance = synthetic(n=40, seed=11)
        result = make_solver("mc3-general", backend="pyjit").solve(instance)
        engine = result.details["engine"]
        assert engine["backend"] == "pyjit"
        assert set(engine["backends"]) == {"pyjit"}

    @needs_array
    def test_solver_kwarg_array(self):
        instance = synthetic(n=40, seed=11)
        result = make_solver("mc3-general", backend="array").solve(instance)
        assert result.details["engine"]["backend"] == "array"

    @needs_array
    def test_use_backend_scope_wraps_solve(self):
        instance = synthetic(n=40, seed=13)
        solver = make_solver("mc3-general")  # no explicit choice
        with use_backend("array"):
            scoped = solver.solve(instance)
        plain = solver.solve(instance)
        assert scoped.details["engine"]["backend"] == "array"
        assert plain.details["engine"]["backend"] == current_backend_name()
        assert scoped.solution.classifiers == plain.solution.classifiers
        assert scoped.cost == plain.cost

    @needs_array
    def test_per_route_override_wins_for_routed_components(self):
        # One k <= 2 component (routed, pinned to array) and one k = 3
        # component (default path, engine-level pyjit).
        queries = [
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
            frozenset({"x", "y", "z"}),
            frozenset({"x", "y"}),
        ]
        instance = MC3Instance(queries, UniformCost(1.0))

        class RoutedGeneral(GeneralSolver):
            def routes(self):
                return (exact_k2_route(backend="array"),)

        result = RoutedGeneral(backend="pyjit").solve(instance)
        engine = result.details["engine"]
        assert engine["backend"] == "pyjit"
        assert engine["backends"].get("array", 0) >= 1
        assert engine["backends"].get("pyjit", 0) >= 1
        baseline = GeneralSolver(dispatch_k2=True).solve(instance)
        assert result.solution.classifiers == baseline.solution.classifiers
        assert result.cost == baseline.cost

    def test_solver_registry_accepts_backend_for_all_solvers(self):
        # k <= 2 keeps every registered solver applicable (mc3-k2
        # rejects longer queries).
        instance = synthetic(n=30, seed=5, max_length=2)
        from repro.solvers import available_solvers

        for name in available_solvers():
            try:
                plain = make_solver(name).solve(instance)
            except SolverError:
                continue  # not applicable to this instance shape
            result = make_solver(name, backend="pyjit").solve(instance)
            assert result.solution.classifiers == plain.solution.classifiers
            assert result.cost == plain.cost
