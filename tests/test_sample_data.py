"""The checked-in sample data must stay loadable and consistent."""

from pathlib import Path

import pytest

from repro.core import load_instance, load_solution
from repro.datasets import instance_from_files
from repro.solvers import make_solver

DATA = Path(__file__).resolve().parent.parent / "data"


class TestSampleData:
    def test_instance_loads(self):
        instance = load_instance(DATA / "bestbuy_small.json")
        assert instance.n == 120
        assert instance.max_query_length <= 4

    def test_solution_matches_instance(self):
        instance = load_instance(DATA / "bestbuy_small.json")
        short = instance.restricted_to(lambda q: len(q) <= 2)
        solution = load_solution(DATA / "bestbuy_small_solution.json")
        solution.verify(short)

    def test_solution_still_optimal(self):
        """Regenerating the dataset must not silently change the data's
        optimum (seed-pinned determinism end to end)."""
        instance = load_instance(DATA / "bestbuy_small.json")
        short = instance.restricted_to(lambda q: len(q) <= 2)
        solution = load_solution(DATA / "bestbuy_small_solution.json")
        assert make_solver("mc3-k2").solve(short).cost == solution.cost

    def test_log_and_costs_assemble(self):
        instance = instance_from_files(
            DATA / "private_small_queries.txt",
            DATA / "private_small_costs.csv",
        )
        assert instance.n == 60
        result = make_solver("mc3-general").solve(instance)
        result.solution.verify(instance)
