"""Tests for reprolint's whole-program analysis layer (``--analyze``).

Structure:

* call-graph and symbol-resolution unit tests over a fixture
  mini-package (registry indirection, template-method dispatch,
  recursion cycles) written into a ``src/repro/...`` mirror under
  ``tmp_path`` so the module graph engages exactly as on the real tree;
* paired good/bad taint fixtures per RPL5xx rule, including the
  ≥2-hop flow that RPL101/RPL204 provably cannot see;
* the SARIF reporter golden document;
* ``--jobs N`` byte-identity with the serial path;
* CLI path handling (exit 2 on missing paths, warning on non-.py);
* RPL001 unused-suppression detection;
* the baseline gate (new findings fail, stale entries fail, the
  baseline only shrinks, justifications survive regeneration).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.devtools.reprolint import (
    PathError,
    as_sarif_document,
    collect_files,
    lint_paths,
    render_json,
)
from repro.devtools.reprolint.analysis import build_analysis
from repro.devtools.reprolint.baseline import (
    apply_baseline,
    finding_keys,
    load_baseline,
    render_baseline,
)
from repro.devtools.reprolint.cli import main as reprolint_main
from repro.devtools.reprolint.model import SourceModule
from repro.devtools.reprolint.registry import get_rule


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def build_program(tmp_path: Path, sources: dict):
    """Materialize a fixture tree and build the whole-program analysis
    directly (no rules), for unit tests of the graph layers."""
    for rel, source in sources.items():
        write_module(tmp_path, rel, source)
    modules = [SourceModule.parse(path) for path in collect_files([tmp_path])]
    return build_analysis(modules)


def rule_ids(result) -> set:
    return {violation.rule_id for violation in result.violations}


# ----------------------------------------------------------------------
# Fixture mini-package: solver hierarchy + registry + engine driver
# ----------------------------------------------------------------------

MINI_PACKAGE = {
    "src/repro/solvers/base.py": """
        class ComponentSolver:
            def solve(self, component):
                return self.solve_component(component)

            def solve_component(self, component):
                raise NotImplementedError
        """,
    "src/repro/solvers/alpha.py": """
        from repro.solvers.base import ComponentSolver

        class AlphaSolver(ComponentSolver):
            def __init__(self):
                self.calls = 0

            def solve_component(self, component):
                return set(), {}
        """,
    "src/repro/solvers/beta.py": """
        from repro.solvers.base import ComponentSolver

        class BetaSolver(ComponentSolver):
            def __init__(self):
                self.calls = 0

            def solve_component(self, component):
                return set(), {}
        """,
    "src/repro/solvers/registry.py": """
        from repro.solvers.alpha import AlphaSolver
        from repro.solvers.beta import BetaSolver

        _FACTORIES = {
            "alpha": AlphaSolver,
            "beta": lambda: BetaSolver(),
        }

        def make_solver(name):
            return _FACTORIES[name]()
        """,
    "src/repro/engine/driver.py": """
        from repro.solvers.registry import make_solver

        def run_one(name, component):
            solver = make_solver(name)
            return solver.solve_component(component)
        """,
    "src/repro/setcover/cyc.py": """
        def ping(n):
            if n:
                return pong(n - 1)
            return 0

        def pong(n):
            return ping(n)
        """,
}


def test_symbol_table_resolves_from_import_alias(tmp_path):
    analysis = build_program(tmp_path, MINI_PACKAGE)
    table = analysis.module_graph.tables["repro.engine.driver"]
    assert table.aliases["make_solver"] == "repro.solvers.registry.make_solver"


def test_callgraph_collects_functions_and_methods(tmp_path):
    analysis = build_program(tmp_path, MINI_PACKAGE)
    functions = analysis.call_graph.functions
    assert "repro.engine.driver.run_one" in functions
    assert "repro.solvers.base.ComponentSolver.solve" in functions
    assert "repro.solvers.alpha.AlphaSolver.solve_component" in functions


def test_registry_indirection_links_make_solver_to_constructors(tmp_path):
    analysis = build_program(tmp_path, MINI_PACKAGE)
    callers = analysis.call_graph.callers
    # make_solver(...) in the driver dispatches, through _FACTORIES, to
    # the constructor of every registered class — including the one
    # registered behind a lambda.
    for ctor in (
        "repro.solvers.alpha.AlphaSolver.__init__",
        "repro.solvers.beta.BetaSolver.__init__",
    ):
        assert "repro.engine.driver.run_one" in callers[ctor]


def test_self_dispatch_follows_subclass_subtree(tmp_path):
    analysis = build_program(tmp_path, MINI_PACKAGE)
    callers = analysis.call_graph.callers
    # self.solve_component() in the base class template method reaches
    # every override in the (textual) subclass subtree.
    for override in (
        "repro.solvers.alpha.AlphaSolver.solve_component",
        "repro.solvers.beta.BetaSolver.solve_component",
    ):
        assert "repro.solvers.base.ComponentSolver.solve" in callers[override]


def test_unknown_receiver_solve_component_fans_out(tmp_path):
    analysis = build_program(tmp_path, MINI_PACKAGE)
    callers = analysis.call_graph.callers
    assert (
        "repro.engine.driver.run_one"
        in callers["repro.solvers.alpha.AlphaSolver.solve_component"]
    )


def test_call_cycle_terminates_and_is_reachable(tmp_path):
    analysis = build_program(tmp_path, MINI_PACKAGE)
    reachable = analysis.call_graph.reachable_from(["repro.setcover.cyc.ping"])
    assert "repro.setcover.cyc.ping" in reachable
    assert "repro.setcover.cyc.pong" in reachable
    # The taint fixpoint converged over the cycle too (engine built).
    assert analysis.taint.summary_of("repro.setcover.cyc.ping") is not None


def test_kernel_dispatch_on_unknown_receiver(tmp_path):
    sources = dict(MINI_PACKAGE)
    sources["src/repro/core/kernels/mykern.py"] = """
        class MyKernel:
            def greedy_wsc(self, instance):
                return 0
        """
    sources["src/repro/engine/use_kernel.py"] = """
        def run_kernel(backend, instance):
            return backend.greedy_wsc(instance)
        """
    analysis = build_program(tmp_path, sources)
    callers = analysis.call_graph.callers
    assert (
        "repro.engine.use_kernel.run_kernel"
        in callers["repro.core.kernels.mykern.MyKernel.greedy_wsc"]
    )


def test_mini_package_is_analyze_clean(tmp_path):
    for rel, source in MINI_PACKAGE.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([tmp_path], analyze=True)
    assert result.ok, "\n".join(v.render() for v in result.violations)


# ----------------------------------------------------------------------
# RPL501: taint reaching solver results (including the ≥2-hop flow)
# ----------------------------------------------------------------------

TWO_HOP_BAD = {
    "src/repro/solvers/twohop.py": """
        from repro.solvers.base import ComponentSolver

        def _pool(component):
            return set(component.queries)

        def _materialize(bucket):
            out = []
            for item in bucket:
                out.append(item)
            return out

        class TwoHopSolver(ComponentSolver):
            def solve_component(self, component):
                return _materialize(_pool(component)), {}
        """,
}

TWO_HOP_GOOD = {
    "src/repro/solvers/twohop.py": """
        from repro.solvers.base import ComponentSolver

        def _pool(component):
            return set(component.queries)

        def _materialize(bucket):
            out = []
            for item in bucket:
                out.append(item)
            return out

        class TwoHopSolver(ComponentSolver):
            def solve_component(self, component):
                return _materialize(sorted(_pool(component))), {}
        """,
}


def test_two_hop_taint_invisible_to_per_file_rules(tmp_path):
    """The defining fixture: the set is built in helper A, materialised
    in helper B, and returned from solve_component — three functions,
    each individually clean under RPL101/RPL204."""
    for rel, source in {**MINI_PACKAGE, **TWO_HOP_BAD}.items():
        write_module(tmp_path, rel, source)
    per_file = lint_paths([tmp_path])  # full per-file rule set
    assert per_file.ok, "\n".join(v.render() for v in per_file.violations)


def test_two_hop_taint_caught_by_rpl501(tmp_path):
    for rel, source in {**MINI_PACKAGE, **TWO_HOP_BAD}.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([tmp_path], select=["RPL501"], analyze=True)
    assert rule_ids(result) == {"RPL501"}
    (violation,) = result.violations
    assert "solvers/twohop.py" in violation.path
    assert "unsorted-iteration" in violation.message  # origin is named


def test_two_hop_sorted_twin_is_clean(tmp_path):
    for rel, source in {**MINI_PACKAGE, **TWO_HOP_GOOD}.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([tmp_path], select=["RPL501"], analyze=True)
    assert result.ok, "\n".join(v.render() for v in result.violations)


def test_rpl501_solution_ctor_through_wrapper(tmp_path):
    """A tainted argument reaching Solution() inside a *callee* is
    reported at the call site that supplied the taint."""
    write_module(
        tmp_path,
        "src/repro/engine/report.py",
        """
        import time

        def wrap(payload):
            return Solution(payload)

        def build_report():
            elapsed = time.perf_counter()
            return wrap(elapsed)
        """,
    )
    result = lint_paths([tmp_path], select=["RPL501"], analyze=True)
    assert rule_ids(result) == {"RPL501"}
    assert any("time@" in v.message for v in result.violations)


def test_rpl501_solution_ctor_clean_twin(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/report.py",
        """
        def wrap(payload):
            return Solution(payload)

        def build_report(count):
            return wrap(count)
        """,
    )
    result = lint_paths([tmp_path], select=["RPL501"], analyze=True)
    assert result.ok


MERGE_SOLVER_TEMPLATE = """
    import time

    from repro.solvers.base import ComponentSolver

    def _timed_parts(component):
        out = []
        for part in component.parts:
            out.append((part, time.perf_counter()))
        return out

    class MergeSolver(ComponentSolver):
        def solve_component(self, component):
            selected = set()
            for part, _seconds in _timed_parts(component):
                selected |= part.classifiers{annotation}
            return sorted(selected), {{}}
    """


def test_rpl501_sanitize_annotation_is_honoured(tmp_path):
    """The engine.py pattern: telemetry rides next to the classifiers,
    so tuple unpacking smears clock taint onto them; the sanitize
    annotation records the human judgment that the classifier sets are
    deterministic.  The same code without the comment must fire, so the
    annotation is provably what clears it."""
    for rel, source in MINI_PACKAGE.items():
        write_module(tmp_path, rel, source)
    write_module(
        tmp_path,
        "src/repro/solvers/merge.py",
        MERGE_SOLVER_TEMPLATE.format(annotation="  # reprolint: sanitize"),
    )
    result = lint_paths([tmp_path], select=["RPL501"], analyze=True)
    assert result.ok, "\n".join(v.render() for v in result.violations)

    write_module(
        tmp_path,
        "src/repro/solvers/merge.py",
        MERGE_SOLVER_TEMPLATE.format(annotation=""),
    )
    unsanitized = lint_paths([tmp_path], select=["RPL501"], analyze=True)
    assert rule_ids(unsanitized) == {"RPL501"}
    assert any("time@" in v.message for v in unsanitized.violations)


# ----------------------------------------------------------------------
# RPL502: taint reaching cache-key material
# ----------------------------------------------------------------------


def test_rpl502_fingerprint_argument(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/keys.py",
        """
        def keyed(component):
            seed = hash(component)
            return component_fingerprint(component, seed)
        """,
    )
    result = lint_paths([tmp_path], select=["RPL502"], analyze=True)
    assert rule_ids(result) == {"RPL502"}
    (violation,) = result.violations
    assert "component_fingerprint" in violation.message
    assert "hash@" in violation.message


def test_rpl502_fingerprint_clean_twin(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/keys.py",
        """
        def keyed(component, salt):
            return component_fingerprint(component, salt)
        """,
    )
    result = lint_paths([tmp_path], select=["RPL502"], analyze=True)
    assert result.ok


def test_rpl502_content_token_return(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/tokens.py",
        """
        def content_token(record):
            return str(set(record.item_list))
        """,
    )
    result = lint_paths([tmp_path], select=["RPL502"], analyze=True)
    assert rule_ids(result) == {"RPL502"}
    (violation,) = result.violations
    assert "content_token" in violation.message


def test_rpl502_content_token_clean_twin(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/tokens.py",
        """
        def content_token(record):
            return str(sorted(record.item_list))
        """,
    )
    result = lint_paths([tmp_path], select=["RPL502"], analyze=True)
    assert result.ok


# ----------------------------------------------------------------------
# RPL503: kernel-backend purity
# ----------------------------------------------------------------------


def test_rpl503_flags_global_write_arg_mutation_and_env_read(tmp_path):
    write_module(
        tmp_path,
        "src/repro/core/kernels/impure.py",
        """
        import os

        _CACHE = {}

        def greedy_wsc(instance):
            global _CACHE
            _CACHE = {}
            instance.rows.sort()
            instance.sets.append(0)
            mode = os.environ.get("REPRO_MODE")
            return mode
        """,
    )
    result = lint_paths([tmp_path], select=["RPL503"], analyze=True)
    messages = [violation.message for violation in result.violations]
    assert any("global" in message for message in messages)
    assert any(".sort()" in message for message in messages)
    assert any(".append()" in message for message in messages)
    assert any("os.environ" in message for message in messages)


def test_rpl503_pure_kernel_and_overlay_writes_are_clean(tmp_path):
    write_module(
        tmp_path,
        "src/repro/core/kernels/pure.py",
        """
        def make_dominated_pruner(instance, overlay):
            for index in range(len(overlay)):
                overlay[index] = False
            overlay.append(True)
            local = list(instance.rows)
            local.sort()
            return local
        """,
    )
    result = lint_paths([tmp_path], select=["RPL503"], analyze=True)
    assert result.ok, "\n".join(v.render() for v in result.violations)


def test_rpl503_does_not_apply_outside_kernel_package(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/mutator.py",
        """
        def accumulate(bucket, item):
            bucket.append(item)
            return bucket
        """,
    )
    result = lint_paths([tmp_path], select=["RPL503"], analyze=True)
    assert result.ok


# ----------------------------------------------------------------------
# RPL504: unseeded randomness reachable from solve_component
# ----------------------------------------------------------------------


def test_rpl504_flags_global_random_in_solver_path(tmp_path):
    sources = dict(MINI_PACKAGE)
    sources["src/repro/solvers/rand.py"] = """
        import random

        from repro.solvers.base import ComponentSolver

        def _jitter():
            return random.random()

        class RandomSolver(ComponentSolver):
            def solve_component(self, component):
                return _jitter(), {}
        """
    for rel, source in sources.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([tmp_path], select=["RPL504"], analyze=True)
    assert rule_ids(result) == {"RPL504"}
    (violation,) = result.violations
    assert "random.random" in violation.message
    assert "reachable from solve_component" in violation.message


def test_rpl504_seeded_rng_threading_is_clean(tmp_path):
    sources = dict(MINI_PACKAGE)
    sources["src/repro/solvers/rand.py"] = """
        import random

        from repro.solvers.base import ComponentSolver

        def _jitter(rng):
            return rng.random()

        class SeededSolver(ComponentSolver):
            def solve_component(self, component):
                rng = random.Random(1234)
                return _jitter(rng), {}
        """
    for rel, source in sources.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([tmp_path], select=["RPL504"], analyze=True)
    assert result.ok, "\n".join(v.render() for v in result.violations)


def test_rpl504_ignores_randomness_off_the_solver_path(tmp_path):
    sources = dict(MINI_PACKAGE)
    sources["src/repro/devtools/shuffle.py"] = """
        import random

        def scramble(items):
            random.shuffle(items)
            return items
        """
    for rel, source in sources.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([tmp_path], select=["RPL504"], analyze=True)
    assert result.ok


# ----------------------------------------------------------------------
# RPL505: taint reaching service state (journal append / planner apply)
# ----------------------------------------------------------------------

SERVICE_STATE_TEMPLATE = """
    import time  # reprolint: ignore[RPL102]

    def _resolve_budget():
        return time.monotonic()  # reprolint: ignore[RPL102]

    def journal_write(journal, batch):
        stamp = _resolve_budget(){annotation}
        journal.append_batch([batch, stamp])

    def apply_batch(planner, batch):
        stamp = _resolve_budget(){annotation}
        planner.add_batch([batch, stamp])
    """


def test_rpl505_flags_both_recovery_sinks(tmp_path):
    """Clock taint crossing a helper call before landing in an
    append_batch() or add_batch() argument fires once per sink, with
    the origin named."""
    write_module(
        tmp_path,
        "src/repro/service/state.py",
        SERVICE_STATE_TEMPLATE.format(annotation=""),
    )
    result = lint_paths([tmp_path], select=["RPL505"], analyze=True)
    assert rule_ids(result) == {"RPL505"}
    messages = sorted(v.message for v in result.violations)
    assert len(messages) == 2
    assert "journal append_batch" in messages[0]
    assert "planner add_batch" in messages[1]
    assert all("time@" in message for message in messages)


def test_rpl505_sanitize_annotation_is_honoured(tmp_path):
    """The daemon.py pattern: the resolved deadline budget is clock-
    derived on purpose, sanitized exactly once at the line where it is
    resolved."""
    write_module(
        tmp_path,
        "src/repro/service/state.py",
        SERVICE_STATE_TEMPLATE.format(annotation="  # reprolint: sanitize"),
    )
    result = lint_paths([tmp_path], select=["RPL505"], analyze=True)
    assert result.ok, "\n".join(v.render() for v in result.violations)


# ----------------------------------------------------------------------
# RPL102 service-scope leg
# ----------------------------------------------------------------------

SERVICE_CLOCK_TEMPLATE = """
    import time{annotation}

    def now():
        return time.monotonic(){annotation}
    """


def test_rpl102_service_scope_flags_clock_access(tmp_path):
    write_module(
        tmp_path,
        "src/repro/service/clock.py",
        SERVICE_CLOCK_TEMPLATE.format(annotation=""),
    )
    result = lint_paths([tmp_path], select=["RPL102"])
    assert rule_ids(result) == {"RPL102"}
    assert len(result.violations) == 2
    assert all("service/" in v.message for v in result.violations)
    # The message routes the author to the fix, not to deletion.
    assert any("annotated" in v.message for v in result.violations)


def test_rpl102_service_scope_ignore_is_honoured(tmp_path):
    write_module(
        tmp_path,
        "src/repro/service/clock.py",
        SERVICE_CLOCK_TEMPLATE.format(
            annotation="  # reprolint: ignore[RPL102]"
        ),
    )
    result = lint_paths([tmp_path], select=["RPL102"])
    assert result.ok, "\n".join(v.render() for v in result.violations)


def test_rpl102_module_wide_scan_is_service_scoped(tmp_path):
    # The same source outside service/ (and outside core/ and any
    # solve_component body) is legitimate timing code.
    write_module(
        tmp_path,
        "src/repro/devtools/clock.py",
        SERVICE_CLOCK_TEMPLATE.format(annotation=""),
    )
    result = lint_paths([tmp_path], select=["RPL102"])
    assert result.ok, "\n".join(v.render() for v in result.violations)


# ----------------------------------------------------------------------
# Analysis rules stay out of plain lint runs
# ----------------------------------------------------------------------


def test_analysis_rules_excluded_without_analyze(tmp_path):
    for rel, source in {**MINI_PACKAGE, **TWO_HOP_BAD}.items():
        write_module(tmp_path, rel, source)
    result = lint_paths([tmp_path])
    assert "RPL501" not in result.rule_ids
    result = lint_paths([tmp_path], analyze=True)
    assert "RPL501" in result.rule_ids


# ----------------------------------------------------------------------
# SARIF reporter
# ----------------------------------------------------------------------


def test_sarif_golden_document(tmp_path):
    write_module(
        tmp_path,
        "src/repro/setcover/newpass.py",
        """
        def drain(pending):
            bucket = {3, 1, 2}
            out = []
            for item in bucket:
                out.append(item)
            return out
        """,
    )
    result = lint_paths([tmp_path], select=["RPL101"])
    document = json.loads(
        json.dumps(as_sarif_document(result)).replace(
            tmp_path.as_posix(), "<ROOT>"
        )
    )
    rule = get_rule("RPL101")
    (violation,) = result.violations
    assert document == {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/devtools.md",
                        "rules": [
                            {
                                "id": "RPL101",
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "fullDescription": {"text": rule.rationale},
                            }
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": "RPL101",
                        "level": "error",
                        "message": {"text": violation.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": (
                                            "<ROOT>/src/repro/setcover/"
                                            "newpass.py"
                                        )
                                    },
                                    "region": {
                                        "startLine": violation.line,
                                        "startColumn": violation.column + 1,
                                    },
                                }
                            }
                        ],
                    }
                ],
            }
        ],
    }


def test_cli_sarif_format(tmp_path, capsys):
    write_module(
        tmp_path,
        "src/repro/setcover/loop.py",
        """
        def drain(bucket):
            return [item for item in {1, 2, 3}]
        """,
    )
    exit_code = reprolint_main(["--format", "sarif", str(tmp_path)])
    document = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"]


# ----------------------------------------------------------------------
# --jobs parity
# ----------------------------------------------------------------------


def test_jobs_output_is_byte_identical_to_serial(tmp_path):
    for index in range(8):
        write_module(
            tmp_path,
            f"src/repro/setcover/mod{index}.py",
            f"""
            def drain{index}(pending):
                bucket = {{3, 1, {index}}}
                out = []
                for item in bucket:
                    out.append(item)
                return out
            """,
        )
    write_module(tmp_path, "src/repro/setcover/broken.py", "def oops(:\n")
    serial = render_json(lint_paths([tmp_path], jobs=1))
    pooled = render_json(lint_paths([tmp_path], jobs=4))
    assert serial == pooled
    assert '"RPL101"' in serial
    assert '"RPL000"' in serial  # the syntax error surfaces identically


# ----------------------------------------------------------------------
# CLI / collect_files path handling
# ----------------------------------------------------------------------


def test_missing_path_raises_path_error(tmp_path):
    try:
        collect_files([tmp_path / "does-not-exist"])
    except PathError as error:
        assert "does not exist" in str(error)
    else:
        raise AssertionError("PathError not raised")


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    exit_code = reprolint_main([str(tmp_path / "does-not-exist")])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "does not exist" in captured.err


def test_non_python_direct_file_is_skipped_with_warning(tmp_path, capsys):
    notes = tmp_path / "notes.txt"
    notes.write_text("not python\n", encoding="utf-8")
    write_module(tmp_path, "ok.py", "x = 1\n")
    warnings: list = []
    files = collect_files([notes, tmp_path / "ok.py"], warnings=warnings)
    assert files == [tmp_path / "ok.py"]
    assert warnings and "notes.txt" in warnings[0]
    exit_code = reprolint_main([str(notes), str(tmp_path / "ok.py")])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "warning" in captured.out and "notes.txt" in captured.out


# ----------------------------------------------------------------------
# RPL001: unused suppressions
# ----------------------------------------------------------------------


def test_rpl001_flags_stale_suppression(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/stale.py",
        """
        def fine():
            return 1  # reprolint: ignore[RPL103] nothing fires here
        """,
    )
    result = lint_paths([tmp_path])
    assert rule_ids(result) == {"RPL001"}
    (violation,) = result.violations
    assert "RPL103" in violation.message


def test_rpl001_silent_for_used_suppression(tmp_path):
    write_module(
        tmp_path,
        "src/repro/setcover/used.py",
        """
        def pick(a_cost, b_cost):
            if a_cost == b_cost:  # reprolint: ignore[RPL103] exact tie
                return 0
            return 1
        """,
    )
    result = lint_paths([tmp_path])
    assert result.ok
    assert result.suppressed == 1


def test_rpl001_flags_unknown_rule_id(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/typo.py",
        "x = 1  # reprolint: ignore[RPL999] no such rule\n",
    )
    result = lint_paths([tmp_path])
    assert rule_ids(result) == {"RPL001"}
    assert "unknown rule id" in result.violations[0].message


def test_rpl001_allow_flag_silences(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/stale.py",
        "x = 1  # reprolint: ignore[RPL103] stale\n",
    )
    result = lint_paths([tmp_path], allow_unused_suppressions=True)
    assert result.ok


def test_rpl001_skips_named_rule_that_did_not_run(tmp_path):
    # On a --select run the named rule never executed, so this run
    # cannot know the suppression is dead — it must stay silent.
    write_module(
        tmp_path,
        "src/repro/engine/stale.py",
        "x = 1  # reprolint: ignore[RPL103] judged elsewhere\n",
    )
    result = lint_paths([tmp_path], select=["RPL401", "RPL001"])
    assert result.ok


def test_rpl001_bare_ignore_judged_only_on_full_analyze_run(tmp_path):
    write_module(
        tmp_path,
        "src/repro/engine/bare.py",
        "x = 1  # reprolint: ignore\n",
    )
    assert lint_paths([tmp_path]).ok  # per-file run: cannot judge
    analyzed = lint_paths([tmp_path], analyze=True)
    assert rule_ids(analyzed) == {"RPL001"}
    assert "bare" in analyzed.violations[0].message


# ----------------------------------------------------------------------
# Baseline gate
# ----------------------------------------------------------------------

BASELINE_BAD_MODULE = (
    "src/repro/engine/keys.py",
    """
    def keyed(component):
        seed = hash(component)
        return component_fingerprint(component, seed)
    """,
)


def _run_analyze(tmp_path, *extra):
    return reprolint_main(
        [
            "--analyze",
            "--select",
            "RPL502",
            *extra,
            str(tmp_path),
        ]
    )


def test_write_baseline_then_gate_passes(tmp_path, capsys):
    write_module(tmp_path, *BASELINE_BAD_MODULE)
    baseline_file = tmp_path / "baseline.json"
    assert _run_analyze(tmp_path, "--write-baseline", str(baseline_file)) == 0
    capsys.readouterr()
    document = json.loads(baseline_file.read_text(encoding="utf-8"))
    assert document["tool"] == "reprolint"
    assert len(document["findings"]) == 1
    assert document["findings"][0]["justification"] == "TODO: justify or fix"

    exit_code = _run_analyze(tmp_path, "--baseline", str(baseline_file))
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "1 matched, 0 new, 0 stale" in captured.out


def test_new_finding_fails_the_gate(tmp_path, capsys):
    write_module(tmp_path, *BASELINE_BAD_MODULE)
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        json.dumps({"tool": "reprolint", "version": 1, "findings": []}),
        encoding="utf-8",
    )
    exit_code = _run_analyze(tmp_path, "--baseline", str(baseline_file))
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "RPL502" in captured.out
    assert "1 new" in captured.out


def test_stale_entry_fails_the_gate(tmp_path, capsys):
    write_module(tmp_path, *BASELINE_BAD_MODULE)
    baseline_file = tmp_path / "baseline.json"
    assert _run_analyze(tmp_path, "--write-baseline", str(baseline_file)) == 0
    capsys.readouterr()
    # The flagged line gets fixed, but the baseline entry is left behind:
    # the gate must fail until the entry is deleted (shrink-only).
    write_module(
        tmp_path,
        "src/repro/engine/keys.py",
        """
        def keyed(component, salt):
            return component_fingerprint(component, salt)
        """,
    )
    exit_code = _run_analyze(tmp_path, "--baseline", str(baseline_file))
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "stale baseline entry" in captured.err


def test_baseline_keys_are_content_addressed(tmp_path):
    path = write_module(tmp_path, *BASELINE_BAD_MODULE)
    result = lint_paths([tmp_path], select=["RPL502"], analyze=True)
    keys_before = [key for _, key in finding_keys(
        result.violations, result.modules_by_path
    )]
    # Prepend unrelated code: line numbers shift, content key survives.
    path.write_text(
        "UNRELATED = 1\n\n" + path.read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    shifted = lint_paths([tmp_path], select=["RPL502"], analyze=True)
    keys_after = [key for _, key in finding_keys(
        shifted.violations, shifted.modules_by_path
    )]
    assert keys_before == keys_after
    assert shifted.violations[0].line != result.violations[0].line


def test_rewrite_preserves_justifications(tmp_path):
    write_module(tmp_path, *BASELINE_BAD_MODULE)
    result = lint_paths([tmp_path], select=["RPL502"], analyze=True)
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        render_baseline(result.violations, result.modules_by_path),
        encoding="utf-8",
    )
    entries = load_baseline(baseline_file)
    key = next(iter(entries))
    entries[key]["justification"] = "seed is pinned by the cache contract"
    regenerated = render_baseline(
        result.violations, result.modules_by_path, entries
    )
    assert "seed is pinned by the cache contract" in regenerated
    new, matched, stale = apply_baseline(
        result.violations, result.modules_by_path, entries
    )
    assert (new, matched, stale) == ([], 1, [])
