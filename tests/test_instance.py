"""Tests for repro.core.instance."""

import math

import pytest

from repro.core import MC3Instance, TableCost, UniformCost
from repro.exceptions import InvalidInstanceError, UncoverableQueryError


def simple_instance(**kwargs):
    return MC3Instance(
        queries=["a b", "b c", "d"],
        cost=UniformCost(1.0),
        **kwargs,
    )


class TestConstruction:
    def test_deduplicates_queries(self):
        instance = MC3Instance(["a b", "b a"], UniformCost(1.0))
        assert instance.n == 1

    def test_rejects_empty_query_load(self):
        with pytest.raises(InvalidInstanceError):
            MC3Instance([], UniformCost(1.0))

    def test_rejects_empty_query(self):
        with pytest.raises(InvalidInstanceError):
            MC3Instance([""], UniformCost(1.0))

    def test_mapping_cost_becomes_table(self):
        instance = MC3Instance(["a"], {"a": 2.0})
        assert isinstance(instance.cost, TableCost)
        assert instance.weight(frozenset("a")) == 2.0

    def test_invalid_classifier_cap(self):
        with pytest.raises(InvalidInstanceError):
            MC3Instance(["a"], UniformCost(1.0), max_classifier_length=0)

    def test_preserves_input_order(self):
        instance = MC3Instance(["b", "a"], UniformCost(1.0))
        assert instance.queries == (frozenset("b"), frozenset("a"))


class TestDerivedQuantities:
    def test_properties_union(self):
        assert simple_instance().properties == frozenset("abcd")

    def test_max_query_length(self):
        assert simple_instance().max_query_length == 2

    def test_weight_honours_cap(self):
        instance = simple_instance(max_classifier_length=1)
        assert instance.weight(frozenset("ab")) == math.inf
        assert instance.weight(frozenset("a")) == 1.0

    def test_total_weight(self):
        instance = simple_instance()
        assert instance.total_weight([frozenset("a"), frozenset("ab")]) == 2.0

    def test_candidates_filters_infinite(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1})
        cands = list(instance.candidates(frozenset("ab")))
        assert frozenset("ab") not in cands
        assert set(cands) == {frozenset("a"), frozenset("b")}

    def test_candidates_respects_cap(self):
        instance = simple_instance(max_classifier_length=1)
        cands = list(instance.candidates(frozenset("ab")))
        assert all(len(c) == 1 for c in cands)

    def test_classifier_universe_dedups(self):
        instance = simple_instance()
        universe = instance.classifier_universe()
        assert len(universe) == len(set(universe))
        assert frozenset("b") in universe  # shared by two queries


class TestIncidence:
    def test_example_from_paper(self):
        """Q = {xy, yz}: I(y) = 2 is the maximum (Section 5)."""
        instance = MC3Instance(["x y", "y z"], UniformCost(1.0))
        assert instance.incidence() == 2
        assert instance.incidence_of(frozenset("y")) == 2
        assert instance.incidence_of(frozenset(("x", "y"))) == 1

    def test_infinite_weight_has_zero_incidence(self):
        instance = MC3Instance(["x y"], {"x": 1, "y": 1})
        assert instance.incidence_of(frozenset(("x", "y"))) == 0

    def test_incidence_without_finite_singletons(self):
        instance = MC3Instance(["x y", "x z"], {"x y": 1, "x z": 1})
        assert instance.incidence() == 1

    def test_queries_containing(self):
        instance = simple_instance()
        assert instance.queries_containing(frozenset("b")) == [
            frozenset("ab"),
            frozenset("bc"),
        ]


class TestValidation:
    def test_coverable_passes(self):
        simple_instance().validate_coverable()

    def test_uncoverable_raises(self):
        instance = MC3Instance(["a b"], {"a": 1})
        with pytest.raises(UncoverableQueryError):
            instance.validate_coverable()


class TestDerivedInstances:
    def test_subset_prefix(self):
        sub = simple_instance().subset(2)
        assert sub.n == 2
        assert sub.queries == simple_instance().queries[:2]

    def test_subset_with_order(self):
        sub = simple_instance().subset(2, order=[2, 0, 1])
        assert sub.queries[0] == frozenset("d")

    def test_subset_bounds(self):
        with pytest.raises(InvalidInstanceError):
            simple_instance().subset(0)
        with pytest.raises(InvalidInstanceError):
            simple_instance().subset(99)

    def test_restricted_to(self):
        short = simple_instance().restricted_to(lambda q: len(q) == 1)
        assert short.queries == (frozenset("d"),)

    def test_restricted_to_empty_raises(self):
        with pytest.raises(InvalidInstanceError):
            simple_instance().restricted_to(lambda q: False)

    def test_split_by_length(self):
        short, long_ = simple_instance().split_by_length(1)
        assert short.n == 1
        assert long_.n == 2

    def test_split_all_short(self):
        short, long_ = simple_instance().split_by_length(2)
        assert long_ is None
        assert short.n == 3

    def test_with_cost(self):
        swapped = simple_instance().with_cost(UniformCost(9.0))
        assert swapped.weight(frozenset("a")) == 9.0
        assert swapped.queries == simple_instance().queries
