"""Hypothesis strategies for MC³ objects.

Unlike the integer-seed + ``random`` recipes in ``conftest.py`` (fast,
but opaque to shrinking), these composite strategies let hypothesis
shrink failing instances to minimal counterexamples: fewer queries,
shorter queries, fewer priced classifiers, smaller weights.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost
from repro.core.properties import iter_nonempty_subsets

PROPERTY_NAMES = [f"p{i}" for i in range(8)]

properties = st.sampled_from(PROPERTY_NAMES)

queries = st.frozensets(properties, min_size=1, max_size=4)

weights = st.one_of(
    st.integers(min_value=0, max_value=30).map(float),
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False),
)


@st.composite
def mc3_instances(
    draw,
    min_queries: int = 1,
    max_queries: int = 6,
    price_all: bool = True,
    drop_rate: float = 0.3,
) -> MC3Instance:
    """A coverable random instance with an explicit cost table.

    ``price_all=False`` drops a share of non-singleton classifiers
    (infinite weight) while keeping singletons, so every query stays
    coverable.
    """
    query_set = draw(
        st.frozensets(queries, min_size=min_queries, max_size=max_queries)
    )
    if not query_set:
        query_set = frozenset([draw(queries)])
    table: Dict[FrozenSet[str], float] = {}
    for q in sorted(query_set, key=sorted):
        for clf in iter_nonempty_subsets(q):
            if clf in table:
                continue
            if not price_all and len(clf) > 1 and draw(st.booleans()):
                continue
            table[clf] = draw(weights)
    return MC3Instance(sorted(query_set, key=sorted), TableCost(table))


@st.composite
def k2_instances(draw, min_queries: int = 1, max_queries: int = 8) -> MC3Instance:
    """Instances whose queries all have length ≤ 2."""
    short_queries = st.frozensets(properties, min_size=1, max_size=2)
    query_set = draw(
        st.frozensets(short_queries, min_size=min_queries, max_size=max_queries)
    )
    if not query_set:
        query_set = frozenset([draw(short_queries)])
    table: Dict[FrozenSet[str], float] = {}
    for q in sorted(query_set, key=sorted):
        for clf in iter_nonempty_subsets(q):
            if clf not in table:
                table[clf] = draw(weights)
    return MC3Instance(sorted(query_set, key=sorted), TableCost(table))
