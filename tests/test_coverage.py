"""Tests for the coverage semantics (Section 2.1) — the independent
feasibility oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import (
    CoverageChecker,
    covering_subset,
    is_covered,
    verify_cover,
)
from repro.exceptions import InfeasibleSolutionError

PROPS = [f"p{i}" for i in range(6)]
QUERY = st.frozensets(st.sampled_from(PROPS), min_size=1, max_size=4)
SELECTION = st.frozensets(
    st.frozensets(st.sampled_from(PROPS), min_size=1, max_size=3), max_size=8
)


def reference_is_covered(q, selected):
    """Literal Section 2.1 definition: ∃ T ⊆ S with P(T) = q, via the
    equivalent union-of-usable-subsets formulation computed naively."""
    usable = [clf for clf in selected if clf <= q]
    union = set()
    for clf in usable:
        union |= clf
    return union == set(q)


class TestIsCovered:
    def test_exact_classifier_covers(self):
        assert is_covered(frozenset("ab"), [frozenset("ab")])

    def test_union_covers(self):
        assert is_covered(frozenset("abc"), [frozenset("ab"), frozenset("c")])

    def test_overlapping_union_covers(self):
        assert is_covered(frozenset("abc"), [frozenset("ab"), frozenset("bc")])

    def test_superset_classifier_does_not_cover(self):
        """A classifier testing extra properties cannot be used: P(T)
        must equal the query exactly."""
        assert not is_covered(frozenset("ab"), [frozenset("abc")])

    def test_partial_union_does_not_cover(self):
        assert not is_covered(frozenset("abc"), [frozenset("ab")])

    def test_empty_selection(self):
        assert not is_covered(frozenset("a"), [])

    @given(QUERY, SELECTION)
    @settings(max_examples=120)
    def test_matches_reference_semantics(self, q, selected):
        assert is_covered(q, selected) == reference_is_covered(q, selected)


class TestCoveringSubset:
    def test_returns_usable_only(self):
        witnesses = covering_subset(
            frozenset("ab"), [frozenset("a"), frozenset("abc")]
        )
        assert witnesses == [frozenset("a")]


class TestCoverageChecker:
    def test_applicable_queries(self):
        checker = CoverageChecker([frozenset("ab"), frozenset("bc"), frozenset("b")])
        assert checker.applicable_queries(frozenset("b")) == [0, 1, 2]
        assert checker.applicable_queries(frozenset("ab")) == [0]
        assert checker.applicable_queries(frozenset("az")) == []

    def test_uncovered_queries(self):
        checker = CoverageChecker([frozenset("ab"), frozenset("c")])
        missing = checker.uncovered_queries([frozenset("ab")])
        assert missing == [frozenset("c")]

    def test_all_covered(self):
        checker = CoverageChecker([frozenset("ab")])
        assert checker.all_covered([frozenset("a"), frozenset("b")])
        assert not checker.all_covered([frozenset("a")])

    @given(st.lists(QUERY, min_size=1, max_size=5, unique=True), SELECTION)
    @settings(max_examples=80)
    def test_checker_agrees_with_is_covered(self, queries, selected):
        checker = CoverageChecker(queries)
        missing = set(checker.uncovered_queries(selected))
        for q in queries:
            assert (q in missing) == (not is_covered(q, selected))


class TestVerifyCover:
    def test_passes_on_feasible(self):
        verify_cover([frozenset("ab")], [frozenset("ab")])

    def test_raises_on_missing(self):
        with pytest.raises(InfeasibleSolutionError) as excinfo:
            verify_cover([frozenset("ab"), frozenset("c")], [frozenset("ab")])
        assert "1 query is" in str(excinfo.value)

    def test_error_counts_multiple(self):
        with pytest.raises(InfeasibleSolutionError) as excinfo:
            verify_cover([frozenset("a"), frozenset("b")], [])
        assert "2 queries are" in str(excinfo.value)
