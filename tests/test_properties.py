"""Unit and property-based tests for repro.core.properties."""

import math
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.properties import (
    canonical_label,
    classifier,
    count_nonempty_subsets,
    iter_nonempty_subsets,
    iter_two_covers,
    iter_two_partitions,
    property_set,
    queries,
    query,
    union_of,
    validate_property,
)
from repro.exceptions import InvalidInstanceError

PROPS = st.frozensets(
    st.sampled_from([f"p{i}" for i in range(7)]), min_size=1, max_size=6
)


class TestValidation:
    def test_valid_property_passes_through(self):
        assert validate_property("adidas") == "adidas"

    def test_non_string_property_rejected(self):
        with pytest.raises(InvalidInstanceError):
            validate_property(42)

    def test_empty_property_rejected(self):
        with pytest.raises(InvalidInstanceError):
            validate_property("")

    def test_untrimmed_property_rejected(self):
        with pytest.raises(InvalidInstanceError):
            validate_property(" adidas")

    def test_property_set_validates_members(self):
        with pytest.raises(InvalidInstanceError):
            property_set(["ok", ""])


class TestQueryConstruction:
    def test_query_from_string_splits_whitespace(self):
        assert query("white  adidas juventus") == frozenset(
            {"white", "adidas", "juventus"}
        )

    def test_query_from_iterable(self):
        assert query(["a", "b"]) == frozenset({"a", "b"})

    def test_query_deduplicates(self):
        assert query("a a b") == frozenset({"a", "b"})

    def test_empty_query_rejected(self):
        with pytest.raises(InvalidInstanceError):
            query("")

    def test_empty_iterable_rejected(self):
        with pytest.raises(InvalidInstanceError):
            query([])

    def test_classifier_same_rules(self):
        assert classifier("x y") == frozenset({"x", "y"})

    def test_queries_plural(self):
        assert queries(["a", "b c"]) == [frozenset({"a"}), frozenset({"b", "c"})]


class TestCanonicalLabel:
    def test_sorted_plus_joined(self):
        assert canonical_label(frozenset({"b", "a"})) == "a+b"

    def test_singleton(self):
        assert canonical_label(frozenset({"x"})) == "x"


class TestSubsetEnumeration:
    def test_enumerates_full_powerset_minus_empty(self):
        subsets = list(iter_nonempty_subsets(frozenset("abc")))
        assert len(subsets) == 7
        assert frozenset("abc") in subsets
        assert frozenset() not in subsets

    def test_respects_max_length(self):
        subsets = list(iter_nonempty_subsets(frozenset("abcd"), max_length=2))
        assert all(len(s) <= 2 for s in subsets)
        assert len(subsets) == 4 + 6

    def test_order_by_increasing_length(self):
        lengths = [len(s) for s in iter_nonempty_subsets(frozenset("abc"))]
        assert lengths == sorted(lengths)

    def test_deterministic_order(self):
        a = list(iter_nonempty_subsets(frozenset("xyz")))
        b = list(iter_nonempty_subsets(frozenset("xyz")))
        assert a == b

    @given(PROPS)
    def test_count_matches_enumeration(self, props):
        assert count_nonempty_subsets(len(props)) == len(
            list(iter_nonempty_subsets(props))
        )

    @given(PROPS, st.integers(min_value=1, max_value=6))
    def test_count_with_cap_matches_enumeration(self, props, cap):
        assert count_nonempty_subsets(len(props), cap) == len(
            list(iter_nonempty_subsets(props, cap))
        )

    def test_count_rejects_negative(self):
        with pytest.raises(ValueError):
            count_nonempty_subsets(-1)


def brute_force_two_covers(props):
    """All unordered pairs (a, b) of non-empty proper subsets with
    a | b == props, as a set of frozensets-of-two (or singleton for
    a == b, impossible here)."""
    subsets = [
        frozenset(c)
        for size in range(1, len(props))
        for c in combinations(sorted(props), size)
    ]
    found = set()
    for i, a in enumerate(subsets):
        for b in subsets[i:]:
            if a | b == props and a != b:
                found.add(frozenset((a, b)))
            elif a | b == props and a == b:
                found.add(frozenset((a,)))
    return found


class TestTwoPartitions:
    def test_pair_has_single_partition(self):
        assert list(iter_two_partitions(frozenset("ab"))) == [
            (frozenset("a"), frozenset("b"))
        ]

    def test_singleton_has_none(self):
        assert list(iter_two_partitions(frozenset("a"))) == []

    @given(PROPS.filter(lambda p: len(p) >= 2))
    @settings(max_examples=40)
    def test_partitions_are_disjoint_and_cover(self, props):
        for a, b in iter_two_partitions(props):
            assert a and b
            assert not (a & b)
            assert a | b == props

    @given(PROPS.filter(lambda p: 2 <= len(p) <= 5))
    @settings(max_examples=40)
    def test_partition_count(self, props):
        count = sum(1 for _ in iter_two_partitions(props))
        assert count == 2 ** (len(props) - 1) - 1

    @given(PROPS.filter(lambda p: 2 <= len(p) <= 5))
    @settings(max_examples=40)
    def test_partitions_unique(self, props):
        seen = set()
        for a, b in iter_two_partitions(props):
            key = frozenset((a, b))
            assert key not in seen
            seen.add(key)


class TestTwoCovers:
    def test_singleton_has_none(self):
        assert list(iter_two_covers(frozenset("a"))) == []

    def test_pair_has_single_cover(self):
        covers = list(iter_two_covers(frozenset("ab")))
        assert covers == [(frozenset("a"), frozenset("b"))]

    @given(PROPS.filter(lambda p: 2 <= len(p) <= 5))
    @settings(max_examples=40)
    def test_matches_brute_force(self, props):
        expected = brute_force_two_covers(props)
        actual = {frozenset((a, b)) for a, b in iter_two_covers(props)}
        assert actual == expected

    @given(PROPS.filter(lambda p: 2 <= len(p) <= 5))
    @settings(max_examples=40)
    def test_each_pair_once(self, props):
        seen = set()
        for a, b in iter_two_covers(props):
            key = frozenset((a, b))
            assert key not in seen, f"duplicate {key}"
            seen.add(key)

    @given(PROPS.filter(lambda p: 2 <= len(p) <= 5))
    @settings(max_examples=40)
    def test_all_proper_and_covering(self, props):
        for a, b in iter_two_covers(props):
            assert a and b
            assert a != props and b != props
            assert a | b == props


class TestUnionOf:
    def test_union(self):
        assert union_of([frozenset("ab"), frozenset("bc")]) == frozenset("abc")

    def test_empty(self):
        assert union_of([]) == frozenset()
