"""The README's quickstart must actually run, and figure averaging must
be sound."""

import re
from pathlib import Path

import pytest

from repro.experiments import FigureResult, Series, average_figures, figure_3a

README = Path(__file__).resolve().parent.parent / "README.md"


class TestReadmeQuickstart:
    def test_quickstart_block_executes(self):
        text = README.read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert blocks, "README lost its quickstart code block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        result = namespace["result"]
        assert result.cost == 7.0

    def test_readme_references_real_files(self):
        text = README.read_text(encoding="utf-8")
        root = README.parent
        for relative in re.findall(r"`(examples/[a-z_]+\.py)`", text):
            assert (root / relative).exists(), f"README references missing {relative}"


class TestAverageFigures:
    def make(self, values):
        return FigureResult(
            "F", "t", "x", "y", [Series("a", [(1, values[0]), (2, values[1])])]
        )

    def test_mean_of_points(self):
        averaged = average_figures([self.make([2, 4]), self.make([4, 8])])
        assert averaged.series_by_name("a").points == [(1, 3.0), (2, 6.0)]
        assert "mean of 2 seeds" in averaged.title

    def test_mismatched_series_rejected(self):
        other = FigureResult("F", "t", "x", "y", [Series("b", [(1, 1.0)])])
        with pytest.raises(ValueError):
            average_figures([self.make([1, 2]), other])

    def test_partial_overlap_keeps_common_points(self):
        a = FigureResult("F", "t", "x", "y", [Series("a", [(1, 2.0), (2, 4.0)])])
        b = FigureResult("F", "t", "x", "y", [Series("a", [(1, 4.0)])])
        averaged = average_figures([a, b])
        assert averaged.series_by_name("a").points == [(1, 3.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_figures([])

    def test_real_figures_average(self):
        figures = [figure_3a(n=80, sizes=[40, 80], seed=s) for s in (0, 1)]
        averaged = average_figures(figures)
        mc3 = averaged.series_by_name("MC3[S]").ys()
        po = averaged.series_by_name("Property-Oriented").ys()
        assert all(m <= p for m, p in zip(mc3, po))
