"""Tests for the fault-tolerant execution layer and the chaos harness.

Structure:

* every ``on_error`` policy under seeded chaos (raise / degrade / skip);
* fallback-chain mechanics: exhaustion history, timeout-triggered
  fallback, the k2-exact rung falling through on long queries;
* worker-crash recovery: a chaos-killed pool worker (a real
  ``os._exit`` → ``BrokenProcessPool``) still yields a feasible,
  independently verified full solution;
* the determinism contract: a fixed chaos seed produces bit-identical
  output across ``jobs=1`` and ``jobs=4``, and (hypothesis) a resilient
  run with zero injected faults is bit-identical to the plain engine;
* exception transport: ``UncoverableQueryError``/``FallbackExhaustedError``
  survive pickling intact, and worker tracebacks cross the process
  boundary annotated with the component index.

The CI chaos job re-runs this module under different seeds via the
``REPRO_CHAOS_SEEDS`` environment variable (comma-separated ints).
"""

from __future__ import annotations

import os
import pickle
import random
from typing import Dict, FrozenSet

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost, UniformCost
from repro.core.kernels import backend_available
from repro.core.properties import iter_nonempty_subsets
from repro.devtools.chaos import (
    CHAOS_MODES,
    ChaosError,
    ChaosInjector,
    ChaosWorkerCrash,
)
from repro.engine import (
    FALLBACK_RUNGS,
    ComponentFailure,
    PartialSolution,
    ResiliencePolicy,
    SolveEngine,
    resolve_rung,
    run_components,
    run_components_resilient,
)
from repro.exceptions import (
    FallbackExhaustedError,
    InfeasibleSolutionError,
    ReductionError,
    ReproError,
    SolverError,
    UncoverableQueryError,
)
from repro.solvers import GeneralSolver, make_solver

#: Seeds the chaos determinism tests run under; CI's chaos job overrides.
CHAOS_SEEDS = [
    int(part)
    for part in os.environ.get("REPRO_CHAOS_SEEDS", "0,1").split(",")
    if part.strip()
]

PRIMARY = "mc3-general"  # GeneralSolver.name — the chain's first rung


def multi_component_instance(
    seed: int,
    blocks: int = 3,
    queries_per_block: int = 3,
    props_per_block: int = 5,
    min_length: int = 2,
    max_length: int = 3,
) -> MC3Instance:
    """An instance that provably decomposes into ``blocks`` components
    (each block draws queries from its own property namespace)."""
    rng = random.Random(f"resilience-test-{seed}")
    queries = []
    costs: Dict[FrozenSet[str], float] = {}
    for block in range(blocks):
        props = [f"b{block}p{i}" for i in range(props_per_block)]
        block_queries = set()
        attempts = 0
        while len(block_queries) < queries_per_block and attempts < 200:
            length = rng.randint(min_length, min(max_length, len(props)))
            block_queries.add(frozenset(rng.sample(props, length)))
            attempts += 1
        for q in sorted(block_queries, key=sorted):
            queries.append(q)
            for clf in iter_nonempty_subsets(q):
                key = (seed,) + tuple(sorted(clf))
                costs.setdefault(
                    clf, float(random.Random(repr(key)).randint(1, 20))
                )
    return MC3Instance(queries, TableCost(costs), name=f"resil{seed}")


def tiny_components(count: int = 3):
    """Standalone single-property-namespace instances usable as
    pre-decomposed components for direct executor tests."""
    return [
        MC3Instance(
            [frozenset({f"c{i}x"}), frozenset({f"c{i}x", f"c{i}y"})],
            UniformCost(1.0),
            name=f"comp{i}",
        )
        for i in range(count)
    ]


class AlwaysFails:
    """Picklable component solver that always raises (for pool tests)."""

    name = "always-fails"

    def solve_component(self, component):
        raise SolverError("boom: deliberate test failure")


class RaisesUncoverable:
    """Picklable solver raising UncoverableQueryError with a real query."""

    name = "raises-uncoverable"

    def solve_component(self, component):
        q = sorted(component.queries, key=sorted)[0]
        raise UncoverableQueryError(q)


def fail_plan(rungs, attempts=1, index=0, mode="fault"):
    """A chaos plan pinning ``mode`` on every (rung, attempt) pair."""
    return {
        (index, rung, attempt): mode
        for rung in rungs
        for attempt in range(attempts)
    }


# ----------------------------------------------------------------------
# The chaos injector itself
# ----------------------------------------------------------------------


class TestChaosInjector:
    def test_decision_is_deterministic_and_seed_sensitive(self):
        a = ChaosInjector(seed=1, fault_rate=0.5)
        b = ChaosInjector(seed=1, fault_rate=0.5)
        c = ChaosInjector(seed=2, fault_rate=0.5)
        grid = [(i, r, n) for i in range(8) for r in ("x", "y") for n in range(3)]
        decisions_a = [a.decision(*key) for key in grid]
        assert decisions_a == [b.decision(*key) for key in grid]
        assert decisions_a != [c.decision(*key) for key in grid]
        assert any(d == "fault" for d in decisions_a)
        assert any(d is None for d in decisions_a)

    def test_plan_overrides_rates(self):
        injector = ChaosInjector(seed=0, fault_rate=1.0, plan={(0, "g", 0): None})
        assert injector.decision(0, "g", 0) is None
        assert injector.decision(0, "g", 1) == "fault"

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(SolverError):
            ChaosInjector(fault_rate=0.7, stall_rate=0.7)

    def test_unknown_plan_mode_rejected(self):
        with pytest.raises(SolverError):
            ChaosInjector(plan={(0, "g", 0): "meteor"})
        for mode in CHAOS_MODES:
            ChaosInjector(plan={(0, "g", 0): mode})  # all legal

    def test_crash_in_main_process_is_simulated(self):
        injector = ChaosInjector(plan={(0, "greedy", 0): "crash"})
        rung = injector.wrap(resolve_rung("greedy"), 0, 0)
        with pytest.raises(ChaosWorkerCrash):
            rung.solve_component(tiny_components(1)[0])

    def test_chaos_rung_round_trips_through_pickle(self):
        injector = ChaosInjector(seed=5, fault_rate=0.25)
        rung = injector.wrap(resolve_rung("greedy"), 3, 1)
        clone = pickle.loads(pickle.dumps(rung))
        assert clone.name == "greedy"
        assert clone.index == 3 and clone.attempt == 1
        assert clone.injector.decision(3, "greedy", 1) == injector.decision(
            3, "greedy", 1
        )


# ----------------------------------------------------------------------
# Policy and rung plumbing
# ----------------------------------------------------------------------


class TestPolicy:
    def test_rejects_unknown_on_error(self):
        with pytest.raises(SolverError):
            ResiliencePolicy(on_error="explode")

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(SolverError):
            ResiliencePolicy(timeout_seconds=0.0)

    def test_backoff_schedule_is_deterministic(self):
        policy = ResiliencePolicy(backoff_base_seconds=0.1, backoff_growth=3.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.3)
        assert policy.backoff_seconds(3) == pytest.approx(0.9)
        assert ResiliencePolicy().backoff_seconds(5) == 0.0

    def test_backoff_cap_pins_the_schedule(self):
        capped = ResiliencePolicy(
            backoff_base_seconds=0.1,
            backoff_growth=3.0,
            backoff_max_seconds=0.25,
        )
        # Pinned: growth applies until the cap, then the cap holds flat.
        assert [capped.backoff_seconds(n) for n in (1, 2, 3, 4)] == [
            pytest.approx(0.1),
            pytest.approx(0.25),
            pytest.approx(0.25),
            pytest.approx(0.25),
        ]
        # Default (None) preserves the uncapped geometric schedule.
        uncapped = ResiliencePolicy(backoff_base_seconds=0.1, backoff_growth=3.0)
        assert uncapped.backoff_max_seconds is None
        assert uncapped.backoff_seconds(4) == pytest.approx(2.7)
        with pytest.raises(SolverError):
            ResiliencePolicy(backoff_max_seconds=-0.5)
        zero = ResiliencePolicy(
            backoff_base_seconds=0.1, backoff_max_seconds=0.0
        )
        assert zero.backoff_seconds(3) == 0.0

    def test_resolve_rung_rejects_unknown_name(self):
        with pytest.raises(SolverError, match="unknown fallback rung"):
            resolve_rung("nope")
        with pytest.raises(SolverError):
            resolve_rung(42)
        for name in FALLBACK_RUNGS:
            assert resolve_rung(name).name == name

    def test_route_fallback_overrides_default_chain(self):
        policy = ResiliencePolicy(
            fallback=("greedy",),
            route_fallback={"exact-k2": ("primal-dual", "greedy")},
        )
        primary = resolve_rung("query-oriented")
        assert [r.name for r in policy.chain_for(primary, None)] == [
            "query-oriented",
            "greedy",
        ]
        assert [r.name for r in policy.chain_for(primary, "exact-k2")] == [
            "query-oriented",
            "primal-dual",
            "greedy",
        ]


# ----------------------------------------------------------------------
# on_error policies end to end (through the solver + engine stack)
# ----------------------------------------------------------------------


class TestOnErrorPolicies:
    def test_raise_propagates_fallback_exhausted(self):
        instance = multi_component_instance(0)
        chaos = ChaosInjector(plan=fail_plan([PRIMARY, "greedy"], attempts=2))
        solver = GeneralSolver(
            resilience=ResiliencePolicy(
                on_error="raise",
                max_retries=1,
                fallback=("greedy",),
                chaos=chaos,
            )
        )
        with pytest.raises(FallbackExhaustedError) as excinfo:
            solver.solve(instance)
        exc = excinfo.value
        assert exc.component_index == 0
        # Full chain history: 2 attempts on the primary, 2 on greedy.
        assert [f.rung for f in exc.failures] == [PRIMARY, PRIMARY, "greedy", "greedy"]
        assert [f.attempt for f in exc.failures] == [0, 1, 0, 1]
        assert all(f.kind == "error" for f in exc.failures)
        assert all(f.error_type == "ChaosError" for f in exc.failures)

    def test_degrade_returns_complete_partial_solution(self):
        instance = multi_component_instance(1)
        chaos = ChaosInjector(plan=fail_plan([PRIMARY, "greedy"]))
        solver = GeneralSolver(
            resilience=ResiliencePolicy(
                on_error="degrade", fallback=("greedy",), chaos=chaos
            )
        )
        result = solver.solve(instance)  # verify=True: coverage checked
        solution = result.solution
        assert isinstance(solution, PartialSolution)
        assert solution.complete
        assert solution.degraded_components == (0,)
        assert not solution.skipped_components
        assert len(solution.failures) == 2
        engine = result.details["engine"]
        assert engine["rungs"]["degraded"] == 1
        assert engine["resilience"]["degraded_components"] == [0]
        # Every recorded failure names the rung that failed.
        for record in engine["resilience"]["failure_records"]:
            assert record["rung"] in (PRIMARY, "greedy")

    def test_skip_leaves_component_uncovered_but_verifies(self):
        instance = multi_component_instance(2)
        chaos = ChaosInjector(plan=fail_plan([PRIMARY]))
        solver = GeneralSolver(
            resilience=ResiliencePolicy(on_error="skip", chaos=chaos)
        )
        result = solver.solve(instance)
        solution = result.solution
        assert isinstance(solution, PartialSolution)
        assert not solution.complete
        assert solution.skipped_components == (0,)
        assert solution.uncovered_queries
        # The skipped queries are exactly a subset of the instance load.
        assert solution.uncovered_queries < frozenset(instance.queries)
        # And the partial solution re-verifies from scratch.
        solution.verify(instance)

    def test_uncoverable_component_raises_unchanged(self):
        # A query whose every classifier is missing from the table has
        # no finite-cost cover; no fallback rung can repair that.
        instance = MC3Instance(
            [frozenset({"a"}), frozenset({"z", "w"})],
            TableCost({frozenset({"a"}): 1.0}),
            name="uncoverable",
        )
        solver = GeneralSolver(
            resilience=ResiliencePolicy(
                on_error="raise", fallback=("greedy", "query-oriented")
            )
        )
        with pytest.raises(UncoverableQueryError):
            solver.solve(instance)

    def test_uncoverable_component_is_skipped_under_degrade(self):
        instance = MC3Instance(
            [frozenset({"a"}), frozenset({"z", "w"})],
            TableCost({frozenset({"a"}): 1.0}),
            name="uncoverable-degrade",
        )
        solver = GeneralSolver(
            resilience=ResiliencePolicy(on_error="degrade", fallback=("greedy",))
        )
        solution = solver.solve(instance).solution
        assert isinstance(solution, PartialSolution)
        assert frozenset({"z", "w"}) in solution.uncovered_queries
        assert frozenset({"a"}) in solution.classifiers


# ----------------------------------------------------------------------
# Fallback-chain mechanics
# ----------------------------------------------------------------------


class TestFallbackChain:
    def test_timeout_triggers_fallback(self):
        instance = multi_component_instance(3)
        chaos = ChaosInjector(
            plan={(0, PRIMARY, 0): "stall"}, stall_seconds=0.2
        )
        solver = GeneralSolver(
            resilience=ResiliencePolicy(
                timeout_seconds=0.05,
                on_error="raise",
                fallback=("greedy",),
                chaos=chaos,
            )
        )
        result = solver.solve(instance)
        engine = result.details["engine"]
        assert engine["resilience"]["failure_kinds"] == {"timeout": 1}
        assert engine["rungs"]["greedy"] == 1
        records = engine["resilience"]["failure_records"]
        assert records[0]["rung"] == PRIMARY
        assert records[0]["kind"] == "timeout"

    def test_timeouts_not_retried_without_opt_in(self):
        instance = multi_component_instance(3)
        chaos = ChaosInjector(
            plan={(0, PRIMARY, 0): "stall", (0, PRIMARY, 1): "stall"},
            stall_seconds=0.2,
        )
        policy = ResiliencePolicy(
            timeout_seconds=0.05,
            max_retries=2,
            fallback=("greedy",),
            chaos=chaos,
        )
        result = GeneralSolver(resilience=policy).solve(instance)
        # A deterministic solver that overran once will overrun again:
        # the chain must fall back immediately, not burn retries.
        assert result.details["engine"]["resilience"]["retries"] == 0
        assert result.details["engine"]["resilience"]["fallbacks"] == 1

    def test_retries_consumed_before_fallback(self):
        instance = multi_component_instance(4)
        chaos = ChaosInjector(plan=fail_plan([PRIMARY], attempts=2))
        policy = ResiliencePolicy(max_retries=2, fallback=("greedy",), chaos=chaos)
        result = GeneralSolver(resilience=policy).solve(instance)
        engine = result.details["engine"]
        # Attempt 0 and 1 fail, attempt 2 (same rung) succeeds: no fallback.
        assert engine["resilience"]["retries"] == 2
        assert engine["resilience"]["fallbacks"] == 0
        assert engine["rungs"][PRIMARY] == 3

    def test_infeasible_output_rejected_and_chain_advances(self):
        instance = multi_component_instance(5)
        chaos = ChaosInjector(plan={(0, PRIMARY, 0): "infeasible"})
        policy = ResiliencePolicy(fallback=("greedy",), chaos=chaos)
        result = GeneralSolver(resilience=policy).solve(instance)
        engine = result.details["engine"]
        assert engine["resilience"]["failure_kinds"] == {"infeasible": 1}
        assert engine["rungs"]["greedy"] == 1

    def test_k2_exact_rung_falls_through_on_long_queries(self):
        # Components here have k=3 queries, so the k2-exact rung raises
        # ReductionError and the chain moves on to greedy.
        instance = multi_component_instance(6, min_length=3, max_length=3)
        chaos = ChaosInjector(plan=fail_plan([PRIMARY]))
        policy = ResiliencePolicy(fallback=("k2-exact", "greedy"), chaos=chaos)
        result = GeneralSolver(resilience=policy).solve(instance)
        engine = result.details["engine"]
        records = engine["resilience"]["failure_records"]
        assert [r["rung"] for r in records if r["index"] == 0] == [
            PRIMARY,
            "k2-exact",
        ]
        assert records[1]["error_type"] == "ReductionError"
        assert engine["rungs"]["greedy"] == 1

    def test_custom_object_rung_is_accepted(self):
        components = tiny_components(1)
        tasks = [(0, AlwaysFails(), components[0], None, None)]
        policy = ResiliencePolicy(fallback=(resolve_rung("greedy"),))
        outcomes, report = run_components_resilient(tasks, jobs=1, policy=policy)
        assert outcomes[0].rung == "greedy"
        assert report.failures[0].rung == "always-fails"


# ----------------------------------------------------------------------
# Circuit breakers layered on the chain (service/breaker.py board)
# ----------------------------------------------------------------------


class TestBreakerIntegration:
    def board(self, threshold=2, probe_interval=4):
        from repro.service.breaker import BreakerBoard

        return BreakerBoard(threshold=threshold, probe_interval=probe_interval)

    def test_tripped_rung_is_skipped_with_probe_schedule(self):
        # The primary rung always faults: components 0-1 trip the
        # breaker, 2-4 skip primary instantly (breaker-open), component
        # 5 is the deterministic half-open probe (it faults → circuit
        # reopens), 6-7 skip again.  Direct executor path so component
        # indices are explicit (the engine's preprocessing would merge
        # or prune instance-level blocks).
        components = tiny_components(8)
        chaos = ChaosInjector(
            plan={(i, "greedy", 0): "fault" for i in range(8)}
        )
        board = self.board(threshold=2, probe_interval=4)
        policy = ResiliencePolicy(
            on_error="degrade",
            fallback=("primal-dual",),
            breakers=board,
            chaos=chaos,
        )
        tasks = [
            (i, resolve_rung("greedy"), component, None, None)
            for i, component in enumerate(components)
        ]
        outcomes, report = run_components_resilient(tasks, jobs=1, policy=policy)
        # Every component still got a real answer from the fallback.
        assert [o.rung for o in outcomes] == ["primal-dual"] * 8
        # Admitted primary attempts: comps 0, 1, and the probe (comp 5).
        assert report.kind_counts["error"] == 3
        assert report.kind_counts["breaker-open"] == 5
        states = board.states()
        assert states["greedy"]["state"] == "open"
        assert states["greedy"]["trips"] == 1
        assert states["greedy"]["probes"] == 1
        assert states["greedy"]["skips"] == 5
        assert states["primal-dual"]["state"] == "closed"

    def test_successful_probe_closes_the_circuit(self):
        # Primary faults only for components 0-1; the first probe
        # (component 2, probe_interval=1) succeeds and closes the
        # circuit, so component 3 runs primary normally again.
        components = tiny_components(4)
        chaos = ChaosInjector(
            plan={(i, "greedy", 0): "fault" for i in range(2)}
        )
        board = self.board(threshold=2, probe_interval=1)
        policy = ResiliencePolicy(
            on_error="degrade",
            fallback=("primal-dual",),
            breakers=board,
            chaos=chaos,
        )
        tasks = [
            (i, resolve_rung("greedy"), component, None, None)
            for i, component in enumerate(components)
        ]
        outcomes, report = run_components_resilient(tasks, jobs=1, policy=policy)
        assert [o.rung for o in outcomes] == [
            "primal-dual",
            "primal-dual",
            "greedy",
            "greedy",
        ]
        assert report.kind_counts == {"error": 2}
        states = board.states()
        assert states["greedy"]["state"] == "closed"
        assert states["greedy"]["trips"] == 1
        assert states["greedy"]["probes"] == 1
        assert states["greedy"]["successes"] == 2

    def test_breaker_exhaustion_degrades_not_hangs(self):
        # Circuit open and no fallback rung left: the chain synthesizes
        # breaker-open failures until exhausted, then degrades — it
        # never blocks waiting for the rung to heal.
        components = tiny_components(3)
        chaos = ChaosInjector(plan={(0, "greedy", 0): "fault"})
        board = self.board(threshold=1, probe_interval=100)
        policy = ResiliencePolicy(
            on_error="degrade", breakers=board, chaos=chaos
        )
        tasks = [
            (i, resolve_rung("greedy"), component, None, None)
            for i, component in enumerate(components)
        ]
        outcomes, report = run_components_resilient(tasks, jobs=1, policy=policy)
        # Component 0 tripped the breaker; 1 and 2 were skipped outright.
        assert [o.rung for o in outcomes] == ["degraded"] * 3
        assert report.degraded == [0, 1, 2]
        assert report.kind_counts == {"error": 1, "breaker-open": 2}
        assert board.states()["greedy"]["state"] == "open"

    def test_breaker_board_identical_across_jobs(self):
        # The same workload drives the breaker through the same final
        # state sequentially and pooled (outcome identity is asserted
        # by the determinism suite; here we pin the health state).
        def drive(jobs):
            instance = multi_component_instance(24, blocks=6)
            chaos = ChaosInjector(
                plan={(i, PRIMARY, 0): "fault" for i in range(6)}
            )
            board = self.board(threshold=2, probe_interval=4)
            policy = ResiliencePolicy(
                on_error="degrade",
                fallback=("greedy",),
                breakers=board,
                chaos=chaos,
            )
            result = GeneralSolver(resilience=policy, jobs=jobs).solve(instance)
            return result.solution.classifiers, result.cost

        sequential = drive(1)
        assert sequential == drive(1)


# ----------------------------------------------------------------------
# Worker-crash recovery
# ----------------------------------------------------------------------


class TestCrashRecovery:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_chaos_killed_worker_recovers_to_full_solution(self, jobs):
        instance = multi_component_instance(7)
        chaos = ChaosInjector(plan={(0, PRIMARY, 0): "crash"})
        policy = ResiliencePolicy(fallback=("greedy",), chaos=chaos)
        solver = GeneralSolver(jobs=jobs, resilience=policy)
        result = solver.solve(instance)  # verify=True: independent checker
        engine = result.details["engine"]
        assert engine["resilience"]["failure_kinds"]["crash"] == 1
        assert engine["rungs"]["greedy"] == 1
        if jobs > 1:
            # A real worker death broke and rebuilt the pool (the first
            # rebuild happens on the break, a second isolates the rerun).
            assert engine["resilience"]["pool_rebuilds"] >= 1
            assert engine["resilience"]["quarantined_components"] == [0]

    def test_crash_recovery_matches_sequential_output(self):
        instance = multi_component_instance(8)
        chaos = ChaosInjector(plan={(1, PRIMARY, 0): "crash"})

        def run(jobs):
            policy = ResiliencePolicy(fallback=("greedy",), chaos=chaos)
            return GeneralSolver(jobs=jobs, resilience=policy).solve(instance)

        sequential, pooled = run(1), run(2)
        assert sequential.solution.classifiers == pooled.solution.classifiers
        assert sequential.cost == pooled.cost
        assert (
            sequential.details["engine"]["rungs"]
            == pooled.details["engine"]["rungs"]
        )

    def test_repeated_crashes_quarantine_then_degrade(self):
        components = tiny_components(3)
        chaos = ChaosInjector(
            plan={
                (0, "greedy", 0): "crash",
                (0, "primal-dual", 0): "crash",
            }
        )
        tasks = [
            (i, resolve_rung("greedy"), component, None, None)
            for i, component in enumerate(components)
        ]
        policy = ResiliencePolicy(
            fallback=("primal-dual",), on_error="degrade", chaos=chaos
        )
        outcomes, report = run_components_resilient(tasks, jobs=2, policy=policy)
        assert [o.rung for o in outcomes] == ["degraded", "greedy", "greedy"]
        assert report.kind_counts["crash"] == 2
        assert report.degraded == [0]


# ----------------------------------------------------------------------
# Determinism contracts
# ----------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_fixed_seed_is_bit_identical_across_jobs(self, seed):
        instance = multi_component_instance(seed, blocks=4)
        chaos = ChaosInjector(seed=seed, fault_rate=0.5, infeasible_rate=0.2)
        policy = ResiliencePolicy(
            on_error="degrade",
            max_retries=1,
            fallback=("greedy", "query-oriented"),
            chaos=chaos,
        )

        def run(jobs):
            solver = GeneralSolver(jobs=jobs, resilience=policy)
            return solver.solve(instance)

        sequential, pooled = run(1), run(4)
        assert sequential.solution.classifiers == pooled.solution.classifiers
        assert sequential.cost == pooled.cost
        seq_engine = sequential.details["engine"]
        pool_engine = pooled.details["engine"]
        assert seq_engine.get("rungs") == pool_engine.get("rungs")
        seq_res, pool_res = seq_engine["resilience"], pool_engine["resilience"]
        for key in ("degraded_components", "skipped_components", "failure_kinds"):
            assert seq_res[key] == pool_res[key], key
        if isinstance(sequential.solution, PartialSolution):
            assert (
                sequential.solution.uncovered_queries
                == pooled.solution.uncovered_queries
            )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_fixed_seed_is_bit_identical_across_kernel_backends(self, seed):
        # The fault-injection decisions key off (component, rung,
        # attempt), never off the kernel implementation, so a chaos run
        # under the array backend must replay the pyjit run exactly —
        # same retries, same degradations, same merged solution.
        if not backend_available("array"):
            pytest.skip("array backend needs numpy >= 2")
        instance = multi_component_instance(seed, blocks=4)

        def run(backend):
            chaos = ChaosInjector(seed=seed, fault_rate=0.5, infeasible_rate=0.2)
            policy = ResiliencePolicy(
                on_error="degrade",
                max_retries=1,
                fallback=("greedy", "query-oriented"),
                chaos=chaos,
            )
            return GeneralSolver(resilience=policy, backend=backend).solve(instance)

        pure, array = run("pyjit"), run("array")
        assert pure.solution.classifiers == array.solution.classifiers
        assert pure.cost == array.cost
        pure_engine, array_engine = pure.details["engine"], array.details["engine"]
        assert pure_engine.get("rungs") == array_engine.get("rungs")
        assert pure_engine["backend"] == "pyjit"
        assert array_engine["backend"] == "array"
        for key in ("degraded_components", "skipped_components", "failure_kinds"):
            assert (
                pure_engine["resilience"][key] == array_engine["resilience"][key]
            ), key
        if isinstance(pure.solution, PartialSolution):
            assert (
                pure.solution.uncovered_queries == array.solution.uncovered_queries
            )

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_degrade_with_zero_faults_matches_plain_engine(self, seed):
        instance = multi_component_instance(seed, blocks=2, queries_per_block=2)
        plain = GeneralSolver().solve(instance)
        policy = ResiliencePolicy(
            on_error="degrade", max_retries=1, fallback=("greedy",)
        )
        resilient = GeneralSolver(resilience=policy).solve(instance)
        assert resilient.solution.classifiers == plain.solution.classifiers
        assert resilient.cost == plain.cost
        assert not isinstance(resilient.solution, PartialSolution)
        assert resilient.details["engine"]["resilience"]["failures"] == 0


# ----------------------------------------------------------------------
# Exception transport across the process boundary
# ----------------------------------------------------------------------


class TestExceptionTransport:
    def test_uncoverable_query_error_pickle_round_trip(self):
        query = frozenset({"alpha", "beta"})
        original = UncoverableQueryError(query)
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is UncoverableQueryError
        assert clone.query == query
        assert str(clone) == str(original)

    def test_uncoverable_query_error_custom_message_round_trip(self):
        query = frozenset({"p"})
        original = UncoverableQueryError(query, "only 1 cover, need 2")
        clone = pickle.loads(pickle.dumps(original))
        assert clone.query == query
        assert clone.args == ("only 1 cover, need 2",)

    def test_fallback_exhausted_error_pickle_round_trip(self):
        failure = ComponentFailure(
            index=2, rung="greedy", attempt=1, kind="error",
            error_type="SolverError", message="boom",
        )
        original = FallbackExhaustedError(2, (failure,))
        clone = pickle.loads(pickle.dumps(original))
        assert clone.component_index == 2
        assert clone.failures == (failure,)
        assert "greedy#1:error" in str(clone)

    def test_query_attribute_survives_a_real_pool(self):
        components = tiny_components(2)
        tasks = [
            (i, RaisesUncoverable(), component, None, None)
            for i, component in enumerate(components)
        ]
        with pytest.raises(UncoverableQueryError) as excinfo:
            run_components(tasks, jobs=2)
        exc = excinfo.value
        # The query is a real frozenset, not a scrambled message string.
        assert isinstance(exc.query, frozenset)
        assert exc.query in {q for c in components for q in c.queries}

    def test_worker_traceback_and_index_annotated_in_pool(self):
        components = tiny_components(2)
        tasks = [
            (i, AlwaysFails(), component, None, None)
            for i, component in enumerate(components)
        ]
        with pytest.raises(SolverError) as excinfo:
            run_components(tasks, jobs=2)
        exc = excinfo.value
        assert exc.component_index in (0, 1)
        assert "AlwaysFails" in exc.worker_traceback or "solve_component" in (
            exc.worker_traceback
        )
        assert "boom" in exc.worker_traceback

    def test_failure_records_carry_worker_traceback(self):
        components = tiny_components(2)
        tasks = [
            (i, AlwaysFails(), component, None, None)
            for i, component in enumerate(components)
        ]
        policy = ResiliencePolicy(on_error="skip")
        _, report = run_components_resilient(tasks, jobs=2, policy=policy)
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.rung == "always-fails"
            assert failure.error_type == "SolverError"
            assert "boom" in failure.traceback


# ----------------------------------------------------------------------
# PartialSolution semantics
# ----------------------------------------------------------------------


class TestPartialSolution:
    def test_verify_excludes_recorded_uncovered_queries(self):
        instance = MC3Instance(
            [frozenset({"a"}), frozenset({"b"})], UniformCost(1.0), name="ps"
        )
        partial = PartialSolution(
            [frozenset({"a"})],
            1.0,
            uncovered_queries=[frozenset({"b"})],
            skipped_components=(1,),
        )
        partial.verify(instance)
        assert not partial.complete

    def test_verify_still_rejects_wrong_cost(self):
        instance = MC3Instance([frozenset({"a"})], UniformCost(1.0), name="ps2")
        partial = PartialSolution([frozenset({"a"})], 99.0)
        with pytest.raises(InfeasibleSolutionError):
            partial.verify(instance)

    def test_verify_rejects_uncovered_query_not_recorded(self):
        instance = MC3Instance(
            [frozenset({"a"}), frozenset({"b"})], UniformCost(1.0), name="ps3"
        )
        partial = PartialSolution([frozenset({"a"})], 1.0)
        with pytest.raises(InfeasibleSolutionError):
            partial.verify(instance)


# ----------------------------------------------------------------------
# Registry + CLI surface
# ----------------------------------------------------------------------


class TestSurface:
    @pytest.mark.parametrize(
        "name",
        ["mc3-general", "mc3-k2", "exact", "mc3-robust", "mc3-refined",
         "short-first"],
    )
    def test_registry_accepts_resilience(self, name):
        solver = make_solver(name, resilience=ResiliencePolicy(on_error="degrade"))
        assert solver is not None

    def test_short_first_threads_policy_to_both_phases(self):
        policy = ResiliencePolicy(on_error="degrade", fallback=("greedy",))
        solver = make_solver("short-first", resilience=policy)
        assert solver.resilience is policy

    def test_cli_builds_policy_only_when_flagged(self):
        import argparse

        from repro.cli import _resilience_policy

        plain = argparse.Namespace(
            timeout=None, on_error="raise", max_retries=0, fallback=None
        )
        assert _resilience_policy(plain) is None
        flagged = argparse.Namespace(
            timeout=1.5, on_error="degrade", max_retries=2,
            fallback=["greedy", "query-oriented"],
        )
        policy = _resilience_policy(flagged)
        assert policy.timeout_seconds == 1.5
        assert policy.on_error == "degrade"
        assert policy.max_retries == 2
        assert policy.fallback == ("greedy", "query-oriented")

    def test_engine_without_policy_has_no_resilience_telemetry(self):
        instance = multi_component_instance(9)
        _, details = SolveEngine().run(instance, GeneralSolver())
        assert "resilience" not in details["engine"]
        assert "rungs" not in details["engine"]

    def test_chaos_error_is_repro_error(self):
        assert issubclass(ChaosError, ReproError)
        assert issubclass(ChaosWorkerCrash, ReproError)
        assert not issubclass(ReductionError, ChaosError)
