"""Tests for the classifier-noise experiment and the noisy-completion
semantics behind it."""

import pytest

from repro.catalog import Catalog, ClassifierSuite, Item, TrainedClassifier
from repro.experiments import noise_quality_curve


class TestNoisyCompletion:
    def test_false_positives_never_written(self):
        """A noisy classifier may predict true on a non-matching item;
        completion must not poison the store."""
        catalog = Catalog()
        catalog.add(Item("x", "t", latent=["a"]))
        noisy = TrainedClassifier(frozenset("b"), 1.0, error_rate=0.99, seed=1)
        suite = ClassifierSuite([noisy])
        added = suite.complete_catalog(catalog)
        assert added == 0
        assert "b" not in catalog.get("x").observed

    def test_false_negatives_lose_annotations(self):
        catalog = Catalog()
        for index in range(50):
            catalog.add(Item(f"i{index}", "t", latent=["a"]))
        noisy = TrainedClassifier(frozenset("a"), 1.0, error_rate=0.3, seed=2)
        suite = ClassifierSuite([noisy])
        suite.complete_catalog(catalog)
        annotated = sum(1 for item in catalog if "a" in item.observed)
        assert 0 < annotated < 50  # some predictions flipped to negative

    def test_audit_counts_flips(self):
        catalog = Catalog()
        for index in range(40):
            catalog.add(Item(f"p{index}", "t", latent=["a"]))
        for index in range(40):
            catalog.add(Item(f"n{index}", "t", latent=["z"]))
        noisy = TrainedClassifier(frozenset("a"), 1.0, error_rate=0.25, seed=3)
        audit = ClassifierSuite([noisy]).audit(catalog)
        assert audit["fn"] > 0 and audit["fp"] > 0
        assert audit["tp"] + audit["fn"] == 40
        assert audit["tn"] + audit["fp"] == 40


class TestNoiseQualityCurve:
    @pytest.fixture(scope="class")
    def figure(self):
        return noise_quality_curve(n=60, error_rates=(0.0, 0.1, 0.3), seed=0)

    def test_perfect_classifiers_give_full_recall(self, figure):
        recall = figure.series_by_name("mean search recall").ys()
        assert recall[0] == pytest.approx(1.0)

    def test_recall_degrades_with_noise(self, figure):
        recall = figure.series_by_name("mean search recall").ys()
        assert recall[-1] < recall[0]

    def test_miss_rate_tracks_error_rate(self, figure):
        miss = figure.series_by_name(
            "classifier miss rate (fn / positives)"
        ).ys()
        assert miss[0] == 0.0
        assert miss == sorted(miss)
