"""Tests for the Weighted Set Cover substrate: instance model, greedy,
LP rounding, primal–dual and the exact branch-and-bound oracle."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidInstanceError, SolverError, UncoverableQueryError
from repro.setcover import (
    WSCInstance,
    exact_wsc,
    greedy_wsc,
    lp_lower_bound,
    lp_nonzeros,
    lp_relaxation,
    lp_rounding_wsc,
    primal_dual_wsc,
    solve_wsc,
)


def build(sets_with_costs):
    """Helper: [(members, cost), ...] -> WSCInstance."""
    instance = WSCInstance()
    for index, (members, cost) in enumerate(sets_with_costs):
        instance.add_set(f"s{index}", members, cost)
    return instance


def random_wsc(seed, num_elements=7, num_sets=9, max_cost=10):
    rng = random.Random(seed)
    elements = [f"e{i}" for i in range(num_elements)]
    instance = WSCInstance()
    # One covering set per element guarantees coverability.
    for index, element in enumerate(elements):
        instance.add_set(f"unit{index}", [element], rng.randint(1, max_cost))
    for index in range(num_sets):
        members = rng.sample(elements, rng.randint(1, num_elements))
        instance.add_set(f"s{index}", members, rng.randint(1, max_cost))
    return instance


def brute_force_wsc(instance):
    best = math.inf
    ids = range(instance.num_sets)
    for size in range(instance.num_sets + 1):
        for combo in itertools.combinations(ids, size):
            cost = sum(instance.set_cost(s) for s in combo)
            if cost >= best:
                continue
            covered = set()
            for s in combo:
                covered.update(instance.set_members(s))
            if len(covered) == instance.universe_size:
                best = cost
    return best


class TestWSCInstance:
    def test_parameters(self):
        instance = build([(["a", "b"], 1), (["b", "c", "d"], 2), (["b"], 3)])
        assert instance.universe_size == 4
        assert instance.num_sets == 3
        assert instance.frequency() == 3  # element b
        assert instance.degree() == 3

    def test_rejects_empty_set(self):
        with pytest.raises(InvalidInstanceError):
            build([([], 1)])

    def test_rejects_bad_cost(self):
        with pytest.raises(InvalidInstanceError):
            build([(["a"], -1)])
        with pytest.raises(InvalidInstanceError):
            build([(["a"], math.inf)])

    def test_zero_cost_allowed(self):
        instance = build([(["a"], 0)])
        assert instance.set_cost(0) == 0.0

    def test_uncoverable_detected(self):
        instance = build([(["a"], 1)])
        instance.add_element("orphan")
        with pytest.raises(UncoverableQueryError):
            instance.validate_coverable()

    def test_verify_solution_catches_gaps(self):
        instance = build([(["a"], 1), (["b"], 1)])
        from repro.setcover import WSCSolution

        with pytest.raises(InvalidInstanceError):
            instance.verify_solution(WSCSolution([0], 1.0))
        with pytest.raises(InvalidInstanceError):
            instance.verify_solution(WSCSolution([0, 1], 5.0))

    def test_prune_redundant_drops_expensive_duplicates(self):
        instance = build([(["a", "b"], 5), (["a"], 1), (["b"], 1)])
        kept = instance.prune_redundant([0, 1, 2])
        assert 0 not in kept
        assert sorted(kept) == [1, 2]

    def test_solution_labels(self):
        instance = build([(["a"], 1)])
        solution = greedy_wsc(instance)
        assert instance.solution_labels(solution) == ["s0"]


class TestGreedy:
    def test_picks_best_ratio(self):
        # One set covering everything at ratio 1 beats two at ratio 1.5.
        instance = build([(["a", "b", "c"], 3), (["a", "b"], 3), (["c"], 3)])
        solution = greedy_wsc(instance)
        assert solution.set_ids == (0,)

    def test_classic_greedy_suboptimality(self):
        """The textbook instance where greedy pays ~H(n) times optimal."""
        instance = build(
            [
                (["e1"], 1.0),
                (["e2"], 1.0 / 2),
                (["e1", "e2"], 1.0 + 1e-6),
            ]
        )
        solution = greedy_wsc(instance)
        instance.verify_solution(solution)
        assert solution.cost == pytest.approx(1.5)  # greedy picks both units

    def test_raises_on_uncoverable(self):
        instance = build([(["a"], 1)])
        instance.add_element("orphan")
        with pytest.raises(UncoverableQueryError):
            greedy_wsc(instance)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_feasible_and_within_ln_bound(self, seed):
        instance = random_wsc(seed)
        solution = greedy_wsc(instance)
        instance.verify_solution(solution)
        optimum = exact_wsc(instance).cost
        bound = math.log(max(2, instance.degree())) + 1
        assert solution.cost <= bound * optimum + 1e-9


class TestLP:
    def test_relaxation_bounds(self):
        instance = build([(["a", "b"], 2), (["a"], 1), (["b"], 1)])
        x = lp_relaxation(instance)
        assert all(-1e-9 <= v <= 1 + 1e-9 for v in x)

    def test_lower_bound_below_optimum(self):
        instance = random_wsc(5)
        assert lp_lower_bound(instance) <= exact_wsc(instance).cost + 1e-9

    def test_nonzeros(self):
        instance = build([(["a", "b"], 1), (["b"], 1)])
        assert lp_nonzeros(instance) == 3

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_rounding_feasible_and_f_approximate(self, seed):
        instance = random_wsc(seed)
        solution = lp_rounding_wsc(instance)
        instance.verify_solution(solution)
        optimum = exact_wsc(instance).cost
        assert solution.cost <= instance.frequency() * optimum + 1e-6

    def test_prune_only_improves(self):
        instance = random_wsc(11)
        raw = lp_rounding_wsc(instance, prune=False)
        pruned = lp_rounding_wsc(instance, prune=True)
        assert pruned.cost <= raw.cost


class TestPrimalDual:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_feasible_and_f_approximate(self, seed):
        instance = random_wsc(seed)
        solution = primal_dual_wsc(instance)
        instance.verify_solution(solution)
        optimum = exact_wsc(instance).cost
        assert solution.cost <= instance.frequency() * optimum + 1e-6

    def test_element_order_changes_output_not_feasibility(self):
        instance = random_wsc(4)
        order = list(range(instance.universe_size))[::-1]
        solution = primal_dual_wsc(instance, element_order=order)
        instance.verify_solution(solution)


class TestExact:
    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force(self, seed):
        instance = random_wsc(seed, num_elements=5, num_sets=5)
        assert exact_wsc(instance).cost == pytest.approx(brute_force_wsc(instance))

    def test_node_limit_raises(self):
        instance = random_wsc(0, num_elements=7, num_sets=10)
        with pytest.raises(SolverError):
            exact_wsc(instance, node_limit=1)


class TestSolveFacade:
    @pytest.mark.parametrize("method", ["greedy", "lp", "primal_dual", "best_of", "exact"])
    def test_all_methods_feasible(self, method):
        instance = random_wsc(9)
        solution = solve_wsc(instance, method=method)
        instance.verify_solution(solution)

    def test_best_of_no_worse_than_greedy(self):
        instance = random_wsc(17)
        assert solve_wsc(instance, "best_of").cost <= solve_wsc(instance, "greedy").cost

    def test_best_of_falls_back_to_primal_dual(self):
        instance = random_wsc(3)
        solution = solve_wsc(instance, "best_of", lp_size_limit=0)
        instance.verify_solution(solution)

    def test_unknown_method(self):
        with pytest.raises(SolverError):
            solve_wsc(random_wsc(1), "magic")
