"""Tests for the parallel experiment runner."""

import pytest

from repro.exceptions import SolverError
from repro.experiments import parallel_sweep, sweep
from tests.conftest import random_instance


@pytest.fixture(scope="module")
def instance():
    return random_instance(13, num_properties=8, num_queries=8, max_length=2)


SOLVERS = [("k2", "mc3-k2", {}), ("po", "property-oriented", {})]


class TestParallelSweep:
    def test_matches_sequential_costs(self, instance):
        sequential = sweep(instance, SOLVERS, sizes=[3, 6, 8], seed=1)
        parallel = parallel_sweep(
            instance, SOLVERS, sizes=[3, 6, 8], seed=1, processes=2
        )
        assert parallel.costs == sequential.costs
        assert parallel.sizes == sequential.sizes

    def test_failures_recorded(self, instance):
        # Mixed refuses varying costs; with allow_failures the sweep
        # records the message instead of raising.
        result = parallel_sweep(
            instance,
            [("mixed", "mixed", {})],
            sizes=[4],
            processes=2,
            allow_failures=True,
        )
        assert result.failures["mixed"]

    def test_failures_raise_by_default(self, instance):
        with pytest.raises(SolverError):
            parallel_sweep(instance, [("mixed", "mixed", {})], sizes=[4], processes=2)
