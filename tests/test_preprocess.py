"""Tests for Algorithm 1 (preprocessing): each step in isolation, the
full pipeline, and the key invariant — preprocessing preserves at least
one optimal solution."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, OverlayCost, TableCost, UniformCost
from repro.exceptions import UncoverableQueryError
from repro.preprocess import (
    ALL_STEPS,
    DominatedPruner,
    partition_queries,
    preprocess,
    prune_k2_singletons,
)
from repro.solvers import ExactSolver
from tests.conftest import random_instance


class TestStep1:
    def test_singleton_query_forces_classifier(self):
        instance = MC3Instance(["a", "a b"], {"a": 3, "b": 1, "a b": 5})
        prep = preprocess(instance, steps=(1,))
        assert frozenset("a") in prep.forced
        assert prep.report.singleton_queries_selected == 1
        assert prep.base_cost == 3

    def test_zero_weight_classifiers_selected(self):
        instance = MC3Instance(["a b"], {"a": 0, "b": 2, "a b": 9})
        prep = preprocess(instance, steps=(1,))
        assert frozenset("a") in prep.forced
        assert prep.report.zero_weight_selected == 1

    def test_covered_queries_removed(self):
        instance = MC3Instance(["a", "b", "a b"], {"a": 1, "b": 1, "a b": 9})
        prep = preprocess(instance, steps=(1,))
        # Selecting A and B covers the query ab as well.
        assert prep.fully_covered
        assert prep.report.queries_covered_step1 == 3

    def test_uncoverable_singleton_raises(self):
        instance = MC3Instance(["a"], {"b": 1})
        with pytest.raises(UncoverableQueryError):
            preprocess(instance, steps=(1,))

    def test_unknown_step_rejected(self):
        instance = MC3Instance(["a"], {"a": 1})
        with pytest.raises(ValueError):
            preprocess(instance, steps=(9,))


class TestStep2:
    def test_partition_by_components(self):
        groups = partition_queries(
            [frozenset("ab"), frozenset("bc"), frozenset("xy")]
        )
        assert [sorted(sorted(q) for q in g) for g in groups] == [
            [["a", "b"], ["b", "c"]],
            [["x", "y"]],
        ]

    def test_single_component(self):
        groups = partition_queries([frozenset("ab"), frozenset("ac")])
        assert len(groups) == 1

    def test_pipeline_produces_components(self):
        instance = MC3Instance(
            ["a b", "x y"], {"a": 1, "b": 1, "a b": 1, "x": 1, "y": 1, "x y": 1}
        )
        prep = preprocess(instance, steps=(1, 2))
        assert len(prep.components) == 2
        assert prep.report.num_components == 2

    def test_components_share_no_properties(self):
        instance = random_instance(21, num_properties=10, num_queries=8)
        prep = preprocess(instance)
        seen = set()
        for component in prep.components:
            assert not (component.properties & seen)
            seen |= component.properties


class TestStep3:
    def test_dominated_pair_removed(self):
        """Observation 3.3's example: W(X)=W(Y)=1, W(XY)=3 ⇒ drop XY."""
        overlay = OverlayCost(TableCost({"x": 1, "y": 1, "x y": 3}))
        pruner = DominatedPruner([frozenset("xy")], overlay)
        removed, _forced = pruner.run([frozenset("xy")])
        assert overlay.is_removed(frozenset(("x", "y")))
        assert removed == 1

    def test_cheaper_pair_kept(self):
        overlay = OverlayCost(TableCost({"x": 2, "y": 2, "x y": 3}))
        pruner = DominatedPruner([frozenset("xy")], overlay)
        pruner.run([frozenset("xy")])
        assert not overlay.is_removed(frozenset(("x", "y")))

    def test_equal_cost_decomposition_removes(self):
        overlay = OverlayCost(TableCost({"x": 1, "y": 2, "x y": 3}))
        pruner = DominatedPruner([frozenset("xy")], overlay)
        pruner.run([frozenset("xy")])
        assert overlay.is_removed(frozenset(("x", "y")))

    def test_chained_decomposition(self):
        """XYZ decomposes through the removed XY's own decomposition."""
        table = {"x": 1, "y": 1, "z": 1, "x y": 2, "x z": 9, "y z": 9, "x y z": 4}
        overlay = OverlayCost(TableCost(table))
        q = frozenset("xyz")
        pruner = DominatedPruner([q], overlay)
        pruner.run([q])
        # XY removed (decomposes to 2 = its weight); XYZ costs 4 > X+Y+Z=3.
        assert overlay.is_removed(frozenset(("x", "y")))
        assert overlay.is_removed(frozenset(("x", "y", "z")))

    def test_forced_unique_cover_selected(self):
        """Only the pair classifier is available: it must be selected."""
        overlay = OverlayCost(TableCost({"x y": 5}))
        q = frozenset("xy")
        pruner = DominatedPruner([q], overlay)
        _removed, forced = pruner.run([q])
        assert forced == [frozenset(("x", "y"))]
        assert overlay.cost(frozenset(("x", "y"))) == 0


class TestStep4:
    def test_observation_34_removal(self):
        """W(X) >= sum of pairs around x ⇒ drop X, select the pairs."""
        table = {"x": 10, "a": 1, "b": 1, "x a": 4, "x b": 4}
        overlay = OverlayCost(TableCost(table))
        queries = [frozenset(("x", "a")), frozenset(("x", "b"))]
        removed, forced = prune_k2_singletons(queries, overlay)
        assert frozenset("x") in removed
        assert set(forced) == {frozenset(("x", "a")), frozenset(("x", "b"))}

    def test_cheap_singleton_survives(self):
        table = {"x": 3, "a": 1, "b": 1, "x a": 4, "x b": 4}
        overlay = OverlayCost(TableCost(table))
        queries = [frozenset(("x", "a")), frozenset(("x", "b"))]
        removed, _forced = prune_k2_singletons(queries, overlay)
        assert removed == set()

    def test_chain_reaction(self):
        """Selecting XY zeroes it, which can flip Y's condition too."""
        table = {"x": 5, "y": 5, "x y": 4}
        overlay = OverlayCost(TableCost(table))
        queries = [frozenset(("x", "y"))]
        removed, forced = prune_k2_singletons(queries, overlay)
        assert frozenset("x") in removed or frozenset("y") in removed
        assert frozenset(("x", "y")) in forced

    def test_requires_length_two(self):
        overlay = OverlayCost(UniformCost(1.0))
        with pytest.raises(ValueError):
            prune_k2_singletons([frozenset("abc")], overlay)

    def test_missing_pair_blocks_removal(self):
        """If some query around x has no pair classifier, X must stay."""
        table = {"x": 10, "a": 1, "b": 1, "x a": 2}  # no "x b"
        overlay = OverlayCost(TableCost(table))
        queries = [frozenset(("x", "a")), frozenset(("x", "b"))]
        removed, _forced = prune_k2_singletons(queries, overlay)
        assert frozenset("x") not in removed


class TestPipelineInvariant:
    """The headline guarantee: pruning preserves at least one optimum."""

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=25, deadline=None)
    def test_preprocessing_preserves_optimal_cost(self, seed):
        instance = random_instance(
            seed, num_properties=6, num_queries=5, max_length=3
        )
        with_prep = ExactSolver(preprocess_steps=ALL_STEPS).solve(instance)
        without = ExactSolver(preprocess_steps=()).solve(instance)
        assert with_prep.cost == pytest.approx(without.cost)

    @given(st.integers(min_value=200, max_value=280))
    @settings(max_examples=15, deadline=None)
    def test_preserves_optimum_with_missing_classifiers(self, seed):
        instance = random_instance(
            seed, num_properties=6, num_queries=5, max_length=3, missing_fraction=0.4
        )
        with_prep = ExactSolver(preprocess_steps=ALL_STEPS).solve(instance)
        without = ExactSolver(preprocess_steps=()).solve(instance)
        assert with_prep.cost == pytest.approx(without.cost)

    @given(st.integers(min_value=0, max_value=80))
    @settings(max_examples=15, deadline=None)
    def test_k2_preserves_optimum(self, seed):
        instance = random_instance(
            seed, num_properties=7, num_queries=6, max_length=2
        )
        with_prep = ExactSolver(preprocess_steps=ALL_STEPS).solve(instance)
        without = ExactSolver(preprocess_steps=()).solve(instance)
        assert with_prep.cost == pytest.approx(without.cost)

    def test_finalize_prices_against_original(self, example11):
        prep = preprocess(example11)
        solution = prep.finalize(
            clf for component in prep.components for clf in component.queries
        )
        # Whatever we add, pricing is against the original weights.
        assert solution.cost == example11.total_weight(solution.classifiers)

    def test_report_fields_populated(self):
        instance = MC3Instance(
            ["a", "a b", "x y"],
            {"a": 1, "b": 2, "a b": 9, "x": 4, "y": 4, "x y": 1},
        )
        prep = preprocess(instance)
        report = prep.report.as_dict()
        assert report["steps_run"] == [1, 2, 3, 4]
        assert report["elapsed_seconds"] >= 0
        assert prep.report.singleton_queries_selected == 1
