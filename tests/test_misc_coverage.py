"""Edge-case tests for small utility paths across the package."""

import math

import pytest

from repro.core import MC3Instance, TableCost, UniformCost, materialize_cost
from repro.core.costs import HashCost
from repro.exceptions import DatasetError, SolverError
from repro.experiments.report import _fmt, render_table
from repro.experiments.runner import time_solver
from repro.preprocess.pipeline import _may_have_zero_weights
from repro.solvers import K2Solver, PropertyOrientedSolver


class TestMaterializeCost:
    def test_materialises_lazy_model(self):
        instance = MC3Instance(["a b"], HashCost(1, 5, seed=0))
        concrete = materialize_cost(instance)
        assert isinstance(concrete.cost, TableCost)
        for clf in instance.candidates(frozenset(("a", "b"))):
            assert concrete.weight(clf) == instance.weight(clf)

    def test_entry_limit_enforced(self):
        instance = MC3Instance(["a b c d"], UniformCost(1.0))
        with pytest.raises(DatasetError):
            materialize_cost(instance, max_entries=3)

    def test_preserves_metadata(self):
        instance = MC3Instance(
            ["a b"], UniformCost(1.0), max_classifier_length=1, name="meta"
        )
        concrete = materialize_cost(instance)
        assert concrete.name == "meta"
        assert concrete.max_classifier_length == 1


class TestReportFormatting:
    def test_fmt_nan_and_none(self):
        assert _fmt(float("nan")) == "-"
        assert _fmt(None) == "-"

    def test_fmt_large_and_small_floats(self):
        assert _fmt(1234.0) == "1,234"
        assert _fmt(0.12345) == "0.123"

    def test_fmt_strings_pass_through(self):
        assert _fmt("abc") == "abc"

    def test_render_table_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRunnerHelpers:
    def test_time_solver(self):
        instance = MC3Instance(["a"], {"a": 1})
        result = time_solver(PropertyOrientedSolver, instance)
        assert result.cost == 1.0
        assert result.elapsed_seconds >= 0


class TestZeroWeightScanHeuristic:
    def test_hash_cost_with_positive_low_skips(self):
        instance = MC3Instance(["a b"], HashCost(1, 5, seed=0))
        assert not _may_have_zero_weights(instance)

    def test_hash_cost_with_zero_low_scans(self):
        instance = MC3Instance(["a b"], HashCost(0, 5, seed=0))
        assert _may_have_zero_weights(instance)

    def test_uniform_positive_skips(self):
        instance = MC3Instance(["a b"], UniformCost(2.0))
        assert not _may_have_zero_weights(instance)

    def test_table_cost_scans(self):
        instance = MC3Instance(["a b"], {"a": 0, "b": 1})
        assert _may_have_zero_weights(instance)


class TestSolverDetails:
    def test_k2_details_fields(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 3})
        result = K2Solver().solve(instance)
        assert result.details["flow_algorithm"] == "dinic"
        assert "preprocess" in result.details
        assert result.details["components"] >= 0

    def test_verify_flag_disables_checking(self):
        """verify=False trusts the solver (used inside Short-First)."""
        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 3})
        result = K2Solver(verify=False).solve(instance)
        assert result.cost == 2.0


class TestCoverageCheckerEdgeCases:
    def test_empty_classifier_posting(self):
        from repro.core import CoverageChecker

        checker = CoverageChecker([frozenset("ab")])
        assert checker.applicable_queries(frozenset(("z",))) == []

    def test_duplicate_queries_tolerated(self):
        from repro.core import CoverageChecker

        checker = CoverageChecker([frozenset("a"), frozenset("a")])
        assert checker.all_covered([frozenset("a")])
