"""Smoke tests: every example script must run to completion.

Examples are part of the public surface; these tests execute each one
in a subprocess (clean import state, real `__main__` path) with scaled
runtimes — the scripts themselves choose laptop-friendly sizes.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
