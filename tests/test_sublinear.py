"""Tests for the sub-linear set cover backends (sampled + streaming),
the scale-tier lazy workloads, and their solver/engine integration."""

import math
import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import synthetic
from repro.datasets.scale import (
    SCALE_TIERS,
    LazyQueryLoad,
    ScaleTierWorkload,
    scale_tier_queries,
    scale_tier_workload,
)
from repro.datasets.synthetic import SyntheticQueryStream
from repro.engine.resilience import FALLBACK_RUNGS, ResiliencePolicy, resolve_rung
from repro.engine.routing import SAMPLED_WSC_ROUTE, sampled_wsc_route
from repro.exceptions import DatasetError, SolverError
from repro.setcover import (
    WSCInstance,
    derive_seed,
    exact_wsc,
    greedy_wsc,
    sampled_greedy_wsc,
    solve_wsc,
    streaming_greedy_wsc,
)
from repro.solvers import available_solvers, make_solver
from repro.solvers.general import GeneralSolver


def build(sets_with_costs):
    """[(members, cost), ...] -> WSCInstance (same helper as test_setcover)."""
    instance = WSCInstance()
    for index, (members, cost) in enumerate(sets_with_costs):
        instance.add_set(f"s{index}", members, cost)
    return instance


def pin_instance():
    """600 elements, 600 expensive singletons + 80 cheap 25-element sets;
    fully deterministic, used for the pinned-seed regressions."""
    rng = random.Random("sublinear-pin")
    instance = WSCInstance()
    for e in range(600):
        instance.add_element(e)
    for e in range(600):
        instance.add_set_ids(f"unit{e}", [e], 40.0)
    for s in range(80):
        members = sorted(rng.sample(range(600), 25))
        instance.add_set_ids(f"s{s}", members, float(rng.randint(1, 50)))
    return instance


class TestSampledGreedy:
    def test_fallback_bit_identical_to_greedy(self):
        instance = pin_instance()  # 600 < DEFAULT_EXACT_THRESHOLD
        stats = {}
        sampled = sampled_greedy_wsc(instance, seed=5, stats=stats)
        reference = greedy_wsc(instance)
        assert stats["mode"] == "exact-fallback"
        assert sampled.set_ids == reference.set_ids
        assert sampled.cost == reference.cost

    def test_forced_sampling_feasible(self):
        instance = pin_instance()
        for seed in (0, 1, 99):
            solution = sampled_greedy_wsc(instance, seed=seed, exact_threshold=0)
            instance.verify_solution(solution)

    def test_forced_sampling_pinned_seed_regression(self):
        # Pinned output of the sampling estimator: any drift in the RNG
        # stream, sampling schedule, heap tie-breaks, or the residual
        # repair changes these numbers and must be deliberate.
        instance = pin_instance()
        stats = {}
        solution = sampled_greedy_wsc(
            instance, seed=123, rates=(0.1, 0.3), exact_threshold=0, stats=stats
        )
        assert solution.cost == 2484.0
        assert len(solution.set_ids) == 93
        assert stats["mode"] == "sampled"
        assert [r["sampled"] for r in stats["rounds"]] == [60, 180]
        assert stats["residual_elements"] == 6

    def test_forced_sampling_deterministic(self):
        instance = pin_instance()
        a = sampled_greedy_wsc(instance, seed=7, exact_threshold=0)
        b = sampled_greedy_wsc(instance, seed=7, exact_threshold=0)
        assert a.set_ids == b.set_ids
        assert a.cost == b.cost

    def test_stats_rounds_shrink_uncovered(self):
        instance = pin_instance()
        stats = {}
        sampled_greedy_wsc(instance, seed=3, exact_threshold=0, stats=stats)
        uncovered = [r["uncovered_after"] for r in stats["rounds"]]
        assert uncovered == sorted(uncovered, reverse=True)

    def test_solve_wsc_method(self):
        instance = pin_instance()
        solution = solve_wsc(instance, method="sampled", seed=4)
        instance.verify_solution(solution)

    def test_lazy_workload_matches_materialized(self):
        workload = ScaleTierWorkload(1500, seed=2)
        lazy = sampled_greedy_wsc(workload, seed=9)  # exact fallback path
        eager = sampled_greedy_wsc(workload.wsc_instance(), seed=9)
        assert lazy.set_ids == eager.set_ids
        assert lazy.cost == eager.cost

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_default_path_within_greedy_guarantee(self, seed):
        """Oracle: on brute-forceable instances the default path (which
        takes the exactness fallback at this size) stays within the
        Chvátal ``H(Δ) <= ln Δ + 1`` factor of the optimum."""
        rng = random.Random(f"sublinear-oracle-{seed}")
        num_elements = rng.randint(3, 8)
        instance = WSCInstance()
        for e in range(num_elements):
            instance.add_element(e)
        for e in range(num_elements):
            instance.add_set_ids(f"unit{e}", [e], rng.randint(1, 10))
        for s in range(rng.randint(1, 5)):
            size = rng.randint(1, num_elements)
            members = sorted(rng.sample(range(num_elements), size))
            instance.add_set_ids(f"s{s}", members, rng.randint(1, 10))
        solution = sampled_greedy_wsc(instance, seed=seed)
        instance.verify_solution(solution)
        optimum = exact_wsc(instance)
        bound = (math.log(max(instance.degree(), 2)) + 1) * optimum.cost
        assert solution.cost <= bound + 1e-9

    def test_derive_seed_is_content_addressed(self):
        q1 = [frozenset({"a", "b"}), frozenset({"c"})]
        q2 = [frozenset({"c"}), frozenset({"b", "a"})]  # same content, other order
        q3 = [frozenset({"a", "b"}), frozenset({"d"})]
        assert derive_seed(5, q1) == derive_seed(5, q2)
        assert derive_seed(5, q1) != derive_seed(6, q1)
        assert derive_seed(5, q1) != derive_seed(5, q3)


class TestStreamingGreedy:
    def test_feasible_and_deterministic(self):
        instance = pin_instance()
        a = streaming_greedy_wsc(instance)
        b = streaming_greedy_wsc(instance)
        instance.verify_solution(a)
        assert a.set_ids == b.set_ids

    def test_prune_pass_only_lowers_cost(self):
        instance = pin_instance()
        one_pass = streaming_greedy_wsc(instance, passes=1)
        two_pass = streaming_greedy_wsc(instance, passes=2)
        instance.verify_solution(one_pass)
        instance.verify_solution(two_pass)
        assert two_pass.cost <= one_pass.cost

    def test_invalid_passes_rejected(self):
        with pytest.raises(SolverError):
            streaming_greedy_wsc(pin_instance(), passes=3)

    def test_lazy_workload_matches_materialized(self):
        workload = ScaleTierWorkload(1500, seed=4)
        lazy = streaming_greedy_wsc(workload)
        eager = streaming_greedy_wsc(workload.wsc_instance())
        assert lazy.set_ids == eager.set_ids
        assert lazy.cost == eager.cost

    def test_solve_wsc_method(self):
        instance = pin_instance()
        solution = solve_wsc(instance, method="streaming")
        instance.verify_solution(solution)


class TestScaleTierWorkload:
    def test_dual_access_consistency(self):
        workload = ScaleTierWorkload(3000, seed=11)
        for element in range(0, 3000, 113):
            for set_id in workload.sets_containing(element):
                assert element in workload.set_members(set_id)
        for set_id in range(0, workload.num_sets, 5):
            members = workload.set_members(set_id)
            assert members, f"set {set_id} empty"
            for element in members[:3]:
                assert set_id in workload.sets_containing(element)

    def test_iter_items_matches_sets_containing(self):
        workload = ScaleTierWorkload(500, seed=1)
        items = list(workload.iter_items())
        assert len(items) == 500
        for element, candidates in items[::71]:
            assert candidates == workload.sets_containing(element)

    def test_materialized_twin_is_equivalent(self):
        workload = ScaleTierWorkload(800, seed=6)
        instance = workload.wsc_instance()
        instance.validate_coverable()
        assert instance.universe_size == 800
        assert instance.num_sets == workload.num_sets
        for set_id in range(workload.num_sets):
            assert instance.set_members(set_id) == workload.set_members(set_id)
            assert instance.set_cost(set_id) == workload.set_cost(set_id)

    def test_bit_identical_across_constructions(self):
        a = ScaleTierWorkload(2000, seed=42)
        b = ScaleTierWorkload(2000, seed=42)
        assert a._maps == b._maps
        assert a.set_costs() == b.set_costs()

    def test_named_tiers(self):
        assert set(SCALE_TIERS) == {"100k", "300k", "1m", "3m", "10m"}
        workload = scale_tier_workload("100k", seed=3)
        assert workload.universe_size == 100_000
        with pytest.raises(DatasetError):
            scale_tier_workload("2m")

    def test_constructor_validation(self):
        with pytest.raises(DatasetError):
            ScaleTierWorkload(0)
        with pytest.raises(DatasetError):
            ScaleTierWorkload(100, frequency=0)
        with pytest.raises(DatasetError):
            ScaleTierWorkload(10, num_sets=11)


class TestLazyQueryLoad:
    def test_scale_tier_queries_mirror_synthetic(self):
        load = scale_tier_queries("100k", seed=9)
        instance = synthetic(100_000, seed=9)
        assert len(load) == len(instance.queries)
        # Lazy iteration yields the same queries in the same order
        # without ever holding the list (spot-check a prefix).
        for streamed, materialized in zip(load, instance.queries):
            assert streamed == materialized
            break
        q = instance.queries[0]
        assert load.weight(q) == instance.weight(q)
        assert list(load.candidates(q)) == list(instance.candidates(q))

    def test_weight_honours_length_cap(self):
        load = scale_tier_queries("100k", seed=1, max_classifier_length=2)
        assert load.weight(frozenset({"p1", "p2", "p3"})) == math.inf

    def test_streaming_solver_runs_on_lazy_load(self):
        lazy = LazyQueryLoad(
            SyntheticQueryStream(200, seed=3),
            synthetic(200, seed=3).cost,
            name="lazy-200",
        )
        eager = synthetic(200, seed=3)
        solver = make_solver("mc3-streaming")
        lazy_result = solver.solve(lazy)
        eager_result = solver.solve(eager)
        assert lazy_result.solution.classifiers == eager_result.solution.classifiers
        assert lazy_result.cost == eager_result.cost


class TestSampledSolverIntegration:
    def test_registered(self):
        names = available_solvers()
        assert "mc3-sampled" in names
        assert "mc3-streaming" in names

    def test_jobs_invariance(self):
        instance = synthetic(300, seed=5)
        sequential = make_solver("mc3-sampled", seed=11).solve(instance)
        pooled = make_solver("mc3-sampled", seed=11, jobs=4).solve(instance)
        assert sequential.solution.classifiers == pooled.solution.classifiers
        assert sequential.cost == pooled.cost

    def test_gap_telemetry_in_engine_details(self):
        result = make_solver("mc3-sampled", seed=11).solve(synthetic(300, seed=5))
        gap = result.details["engine"]["approx_gap"]
        assert gap["components_probed"] >= 1
        assert gap["max_ratio_vs_greedy"] >= 1.0
        assert gap["mean_ratio_vs_greedy"] <= gap["max_ratio_vs_greedy"]

    def test_gap_telemetry_pinned(self):
        # Seeded end-to-end: the probed gap itself is reproducible.
        result = make_solver("mc3-sampled", seed=11).solve(synthetic(300, seed=5))
        gap = result.details["engine"]["approx_gap"]
        assert result.cost == 3898.0
        assert abs(gap["max_ratio_vs_greedy"] - 1.0814917127071824) < 1e-12

    def test_gap_probe_off(self):
        result = make_solver("mc3-sampled", seed=11, gap_probe=False).solve(
            synthetic(300, seed=5)
        )
        assert "approx_gap" not in result.details["engine"]

    def test_cache_token_names_sampling_knobs(self):
        base = make_solver("mc3-sampled", seed=1).cache_token()
        other_seed = make_solver("mc3-sampled", seed=2).cache_token()
        other_rates = make_solver(
            "mc3-sampled", seed=1, sample_rates=(0.5,)
        ).cache_token()
        assert base != other_seed
        assert base != other_rates
        # gap_probe is telemetry-only and must NOT split the cache key.
        assert base == make_solver("mc3-sampled", seed=1, gap_probe=False).cache_token()

    def test_sampled_rung_registered_and_solves(self):
        assert "sampled" in FALLBACK_RUNGS
        rung = resolve_rung("sampled")
        assert rung.name == "sampled"
        instance = synthetic(200, seed=2)
        policy = ResiliencePolicy(fallback=("sampled", "query-oriented"))
        result = make_solver("mc3-general", resilience=policy).solve(instance)
        result.solution.verify(instance)

    def test_sampled_route_dispatches_large_components(self):
        route = sampled_wsc_route(min_queries=1, seed=3)

        class Routed(GeneralSolver):
            def routes(self):
                return (route,)

        result = Routed().solve(synthetic(200, seed=2))
        assert result.details["engine"]["routed"].get(SAMPLED_WSC_ROUTE, 0) >= 1
        result.solution.verify(synthetic(200, seed=2))

    def test_route_cache_token_names_knobs(self):
        a = sampled_wsc_route(seed=1).cache_token
        b = sampled_wsc_route(seed=2).cache_token
        c = sampled_wsc_route(seed=1, rates=(0.5,)).cache_token
        assert a != b and a != c

    def test_streaming_solver_feasible(self):
        instance = synthetic(300, seed=5)
        result = make_solver("mc3-streaming").solve(instance)
        assert result.details["queries_streamed"] == len(instance.queries)
        assert (
            result.details["already_covered"] + result.details["covers_bought"]
            == len(instance.queries)
        )


class TestCrossProcessDeterminism:
    def test_sampled_stable_across_hash_seeds(self, tmp_path):
        """The full sampled pipeline (stream generator -> preprocess ->
        per-component derive_seed -> sampled greedy) is bit-identical
        across PYTHONHASHSEED values — nothing in the chain may lean on
        builtin hash ordering."""
        script = (
            "import sys\n"
            "from repro.datasets import synthetic\n"
            "from repro.solvers import make_solver\n"
            "r = make_solver('mc3-sampled', seed=11).solve(synthetic(200, seed=5))\n"
            "sig = (r.cost, sorted(tuple(sorted(c)) for c in r.solution.classifiers))\n"
            "print(repr(sig))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        outputs = []
        for hash_seed in ("0", "1", "424242"):
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1] == outputs[2]


class TestCliFlags:
    def test_seed_and_sample_rate_forwarded(self, tmp_path, capsys):
        from repro.cli import main as mc3_main
        from repro.core import MC3Instance, save_instance

        instance = MC3Instance(
            ["a b", "c", "a c"],
            {"a": 1, "b": 2, "a b": 2.5, "c": 1, "a c": 1.5},
            name="cli-sublinear",
        )
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        code = mc3_main(
            [
                "solve",
                str(path),
                "--solver",
                "mc3-sampled",
                "--seed",
                "9",
                "--sample-rate",
                "0.2",
                "--sample-rate",
                "0.5",
            ]
        )
        assert code == 0
        assert "cost" in capsys.readouterr().out
