"""Equivalence suite for the bitset property-space rewrite.

Every hot path that moved onto interned integer masks —
:mod:`repro.core.bitspace` helpers, the min-cover DP, dominated
pruning, the MC³ → WSC reduction, and both greedy set-cover variants —
is checked here against the verbatim pre-change implementations kept in
:mod:`repro.core.reference`.  The promise under test is *bit-identical*
output: same orders, same tie-breaks, same costs, same solutions, for
every registered solver.
"""

import math
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, OverlayCost, TableCost
from repro.core.bitspace import (
    MaskCost,
    PropertySpace,
    compress_masks,
    iter_bits,
    mask_union,
    popcount,
)
from repro.core.mincover import enumerate_covers, min_cover
from repro.core.properties import (
    iter_nonempty_subsets,
    iter_two_covers,
    iter_two_partitions,
)
from repro.core.reference import (
    ReferenceDominatedPruner,
    patch_reference_kernels,
    reference_bucket_greedy_wsc,
    reference_enumerate_covers,
    reference_greedy_wsc,
    reference_mc3_to_wsc,
    reference_min_cover,
)
from repro.exceptions import ReductionError, SolverError, UncoverableQueryError
from repro.preprocess.dominated import DominatedPruner
from repro.reductions import mc3_to_wsc
from repro.setcover import bucket_greedy_wsc, greedy_wsc
from repro.solvers import available_solvers, make_solver
from tests.strategies import PROPERTY_NAMES, mc3_instances
from tests.test_setcover import random_wsc

properties = st.sampled_from(PROPERTY_NAMES)
small_sets = st.frozensets(properties, min_size=1, max_size=6)


class TestMaskPrimitives:
    @given(small_sets)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_and_popcount(self, props):
        space = PropertySpace.from_queries([props])
        mask = space.mask_of(props)
        assert space.set_of(mask) == props
        assert popcount(mask) == len(props)
        assert [space.properties[b] for b in iter_bits(mask)] == sorted(props)

    def test_mask_union(self):
        assert mask_union([]) == 0
        assert mask_union([0b001, 0b100, 0b010]) == 0b111

    @given(small_sets, st.sampled_from([None, 1, 2, 3]))
    @settings(max_examples=60, deadline=None)
    def test_subset_masks_match_frozenset_order(self, props, max_length):
        """Order-exact: subsets come out in the historical order."""
        space = PropertySpace.from_queries([props])
        mask = space.mask_of(props)
        via_masks = [
            space.set_of(sub) for sub in space.iter_subset_masks(mask, max_length)
        ]
        assert via_masks == list(iter_nonempty_subsets(props, max_length))

    @given(st.frozensets(properties, min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_two_partition_masks_match_family(self, props):
        """Same family of unordered partitions (order may differ)."""
        space = PropertySpace.from_queries([props])
        mask = space.mask_of(props)
        via_masks = Counter(
            frozenset((space.set_of(a), space.set_of(b)))
            for a, b in space.iter_two_partition_masks(mask)
        )
        via_sets = Counter(
            frozenset((a, b)) for a, b in iter_two_partitions(props)
        )
        assert via_masks == via_sets

    @given(st.frozensets(properties, min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_two_cover_masks_match_family(self, props):
        space = PropertySpace.from_queries([props])
        mask = space.mask_of(props)
        via_masks = Counter(
            frozenset((space.set_of(a), space.set_of(b)))
            for a, b in space.iter_two_cover_masks(mask)
        )
        via_sets = Counter(frozenset((a, b)) for a, b in iter_two_covers(props))
        assert via_masks == via_sets

    def test_compress_masks_filters_to_submasks(self):
        full, local = compress_masks(0b0110, [0b0010, 0b1000, 0b0110, 0b0111])
        assert full == 0b11
        assert local == [0b01, 0b11]  # non-submasks dropped


class TestMaskCostOverlayWriteThrough:
    def test_select_and_remove_reach_the_overlay(self):
        instance = MC3Instance(
            ["a b"], TableCost({frozenset("a"): 1, frozenset("b"): 2,
                                frozenset("ab"): 4})
        )
        overlay = OverlayCost(instance.cost)
        space = PropertySpace.from_queries(instance.queries)
        cost = MaskCost(space, overlay)
        a = space.mask_of(frozenset("a"))
        assert cost.cost(a) == 1
        cost.select(a)
        assert overlay.cost(frozenset("a")) == 0.0
        assert cost.cost(a) == 0.0
        b = space.mask_of(frozenset("b"))
        cost.remove(b)
        assert overlay.is_removed(frozenset("b"))
        assert math.isinf(cost.cost(b))


def _candidates(instance, q):
    return [
        (clf, instance.cost.cost(clf)) for clf in iter_nonempty_subsets(q)
    ]


class TestMinCoverEquivalence:
    @given(mc3_instances(price_all=False))
    @settings(max_examples=40, deadline=None)
    def test_min_cover_matches_reference(self, instance):
        for q in instance.queries:
            candidates = _candidates(instance, q)
            new = min_cover(q, candidates, required=False)
            ref = reference_min_cover(q, candidates, required=False)
            if ref is None:
                assert new is None
                continue
            assert new is not None
            assert new.cost == ref.cost
            assert new.classifiers == ref.classifiers

    @given(mc3_instances(price_all=False), st.sampled_from([None, 1, 2]))
    @settings(max_examples=30, deadline=None)
    def test_enumerate_covers_matches_reference(self, instance, limit):
        for q in instance.queries:
            candidates = _candidates(instance, q)
            new = enumerate_covers(q, candidates, limit=limit, node_budget=200)
            ref = reference_enumerate_covers(
                q, candidates, limit=limit, node_budget=200
            )
            assert [(c.classifiers, c.cost) for c in new] == [
                (c.classifiers, c.cost) for c in ref
            ]


class TestDominatedPrunerEquivalence:
    @given(mc3_instances())
    @settings(max_examples=25, deadline=None)
    def test_run_matches_reference(self, instance):
        overlay_new = OverlayCost(instance.cost)
        overlay_ref = OverlayCost(instance.cost)
        pruner = DominatedPruner(instance.queries, overlay_new)
        reference = ReferenceDominatedPruner(instance.queries, overlay_ref)
        assert pruner.run(instance.queries) == reference.run(instance.queries)
        assert pruner.forced == reference.forced
        assert pruner.removed == reference.removed
        assert overlay_new.overrides == overlay_ref.overrides
        for q in instance.queries:
            for clf in iter_nonempty_subsets(q):
                assert pruner.effective_weight(clf) == reference.effective_weight(
                    clf
                )


class TestReductionEquivalence:
    @given(mc3_instances())
    @settings(max_examples=30, deadline=None)
    def test_mc3_to_wsc_matches_reference(self, instance):
        new = mc3_to_wsc(instance)
        ref = reference_mc3_to_wsc(instance)
        assert new.universe_size == ref.universe_size
        assert new.num_sets == ref.num_sets
        for element_id in range(new.universe_size):
            assert new.element_label(element_id) == ref.element_label(element_id)
        for set_id in range(new.num_sets):
            assert new.set_label(set_id) == ref.set_label(set_id)
            assert new.set_cost(set_id) == ref.set_cost(set_id)
            assert new.set_members(set_id) == ref.set_members(set_id)


class TestGreedyEquivalence:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_greedy_matches_reference(self, seed):
        instance = random_wsc(seed)
        new = greedy_wsc(instance)
        ref = reference_greedy_wsc(instance)
        assert new.set_ids == ref.set_ids
        assert new.cost == ref.cost

    @given(
        st.integers(min_value=0, max_value=400),
        st.sampled_from([1e-6, 0.1, 0.5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_bucket_greedy_matches_reference(self, seed, epsilon):
        instance = random_wsc(seed)
        new = bucket_greedy_wsc(instance, epsilon=epsilon)
        ref = reference_bucket_greedy_wsc(instance, epsilon=epsilon)
        assert new.set_ids == ref.set_ids
        assert new.cost == ref.cost


def _solve_or_exception(solver, instance):
    try:
        result = solver.solve(instance)
    except (ReductionError, SolverError, UncoverableQueryError) as error:
        return type(error).__name__
    return (frozenset(result.solution.classifiers), result.cost)


class TestSolversBitIdentical:
    """Every registered solver returns the identical solution whether it
    runs on the mask kernels or the patched-in frozenset references."""

    @given(mc3_instances(max_queries=4))
    @settings(max_examples=10, deadline=None)
    def test_all_registered_solvers(self, instance):
        kwargs = {"mc3-robust": {"redundancy": 1}}
        for name in available_solvers():
            solver = make_solver(name, **kwargs.get(name, {}))
            current = _solve_or_exception(solver, instance)
            with patch_reference_kernels():
                patched = _solve_or_exception(solver, instance)
            assert current == patched, name
