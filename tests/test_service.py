"""Tests for the planner daemon (:mod:`repro.service`).

Structure:

* journal: record round-trip, deterministic tail recovery (truncated /
  corrupt-checksum / garbage / stale-version tails all dropped at the
  first bad record), writer truncate-then-append, fsync toggle;
* circuit breaker: the closed→open→half-open state machine, the
  counter-based (deterministic) probe schedule, stale-evidence
  handling, the board;
* protocol: message codec, payload validation, the typed-error mapping;
* daemon end-to-end through the in-process client: plan/stats/ping,
  queue-full shedding, deadline-exceeded (typed, daemon stays live),
  same-fingerprint coalescing, drain semantics;
* crash recovery: in-process kill/replay equivalence via
  ``state_digest`` (including a damaged tail), plus one subprocess
  drill run with a real SIGKILL (the CI ``service-chaos`` job runs the
  full two-seed version).
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys

import pytest

from repro.core import TableCost, UniformCost
from repro.core.costs import HashCost
from repro.devtools.chaos import (
    SERVICE_CHAOS_MODES,
    SERVICE_SEAMS,
    ServiceChaos,
    corrupt_journal_tail,
    truncate_journal_tail,
)
from repro.exceptions import SolverError
from repro.service import (
    BreakerBoard,
    CircuitBreaker,
    DeadlineExceededError,
    PlannerClient,
    PlannerService,
    QueueFullError,
    ServiceConfig,
    ShuttingDownError,
    WorkloadJournal,
    read_journal,
    replay_reference,
)
from repro.service import protocol
from repro.service.daemon import _Pending
from repro.service.drill import drill_config, drill_cost, workload_batch
from repro.service.journal import encode_record


def run(coro):
    return asyncio.run(coro)


def plain_cost():
    return TableCost({"a": 1, "b": 2, "c": 5, "d": 3, "a b": 2.5, "c d": 6})


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "w.journal")
        with WorkloadJournal(path) as journal:
            assert journal.append_batch([frozenset({"a", "b"})], 1.5) == 0
            assert journal.append_batch([frozenset({"c"})], None) == 1
        recovered = read_journal(path)
        assert [r.seq for r in recovered.records] == [0, 1]
        assert recovered.records[0].queries == (("a", "b"),)
        assert recovered.records[0].budget_seconds == 1.5
        assert recovered.records[1].budget_seconds is None
        assert recovered.dropped_entries == 0

    def test_missing_file_is_empty(self, tmp_path):
        recovered = read_journal(str(tmp_path / "nope.journal"))
        assert recovered.records == ()
        assert recovered.valid_bytes == 0

    def test_truncated_tail_dropped(self, tmp_path):
        path = str(tmp_path / "w.journal")
        with WorkloadJournal(path) as journal:
            for i in range(3):
                journal.append_batch([frozenset({f"p{i}"})], None)
        truncate_journal_tail(path, 5)  # tear the last record mid-line
        recovered = read_journal(path)
        assert [r.seq for r in recovered.records] == [0, 1]
        assert recovered.dropped_entries == 1
        assert recovered.dropped_bytes > 0

    def test_corrupt_checksum_tail_dropped(self, tmp_path):
        path = str(tmp_path / "w.journal")
        with WorkloadJournal(path) as journal:
            journal.append_batch([frozenset({"a"})], None)
        corrupt_journal_tail(path)
        recovered = read_journal(path)
        assert len(recovered.records) == 1
        assert recovered.dropped_entries == 1

    def test_flipped_byte_invalidates_record(self, tmp_path):
        path = str(tmp_path / "w.journal")
        with WorkloadJournal(path) as journal:
            journal.append_batch([frozenset({"a"})], None)
        blob = bytearray(open(path, "rb").read())
        blob[10] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert read_journal(path).records == ()

    def test_recovery_stops_at_first_bad_record(self, tmp_path):
        # A valid-looking record *after* a bad one must not resurrect:
        # seq continuity is part of the integrity check.
        path = str(tmp_path / "w.journal")
        good0 = encode_record(0, [frozenset({"a"})], None)
        good2 = encode_record(2, [frozenset({"b"})], None)
        with open(path, "wb") as handle:
            handle.write(good0 + b"garbage line\n" + good2)
        recovered = read_journal(path)
        assert [r.seq for r in recovered.records] == [0]
        assert recovered.dropped_entries == 2

    def test_writer_truncates_damage_then_appends(self, tmp_path):
        path = str(tmp_path / "w.journal")
        with WorkloadJournal(path) as journal:
            journal.append_batch([frozenset({"a"})], None)
        corrupt_journal_tail(path)
        with WorkloadJournal(path) as journal:
            assert journal.recovered.dropped_entries == 1
            assert journal.append_batch([frozenset({"b"})], 2.0) == 1
        recovered = read_journal(path)
        assert [r.seq for r in recovered.records] == [0, 1]
        assert recovered.dropped_entries == 0

    def test_fsync_toggle_and_stats(self, tmp_path):
        path = str(tmp_path / "w.journal")
        with WorkloadJournal(path, fsync=False) as journal:
            journal.append_batch([frozenset({"a"})], None)
            stats = journal.stats()
        assert stats["fsync"] is False
        assert stats["appended"] == 1

    def test_timestamp_never_affects_replay(self, tmp_path):
        a = encode_record(0, [frozenset({"a"})], 1.0, timestamp=1.0)
        b = encode_record(0, [frozenset({"a"})], 1.0, timestamp=999.0)
        assert a != b  # forensic field present...
        path_a, path_b = str(tmp_path / "a"), str(tmp_path / "b")
        open(path_a, "wb").write(a)
        open(path_b, "wb").write(b)
        # ...but invisible to what recovery hands the planner.
        assert read_journal(path_a).records == read_journal(path_b).records


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record(ok=False)
        assert breaker.state == "closed"
        breaker.record(ok=False)
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record(ok=False)
        breaker.record(ok=True)
        breaker.record(ok=False)
        assert breaker.state == "closed"

    def test_probe_schedule_is_counter_based(self):
        breaker = CircuitBreaker(threshold=1, probe_interval=3)
        breaker.record(ok=False)
        # Denials until the probe_interval-th attempt becomes a probe.
        decisions = [breaker.allow() for _ in range(6)]
        assert decisions == [False, False, True, False, False, False]
        assert breaker.state == "half-open"
        assert breaker.probes == 1

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, probe_interval=2)
        breaker.record(ok=False)
        while not breaker.allow():
            pass
        breaker.record(ok=True)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_countdown(self):
        breaker = CircuitBreaker(threshold=1, probe_interval=3)
        breaker.record(ok=False)
        while not breaker.allow():
            pass
        breaker.record(ok=False)
        assert breaker.state == "open"
        assert [breaker.allow() for _ in range(3)] == [False, False, True]

    def test_stale_evidence_while_open_is_ignored(self):
        # An outcome arriving for an attempt admitted before the trip
        # must not close (or further damage) the breaker.
        breaker = CircuitBreaker(threshold=1, probe_interval=4)
        breaker.record(ok=False)
        breaker.record(ok=True)
        assert breaker.state == "open"

    def test_determinism_same_call_sequence_same_states(self):
        def drive(breaker):
            out = []
            breaker.record(ok=False)
            for step in range(10):
                allowed = breaker.allow()
                if allowed:
                    breaker.record(ok=step >= 8)
                out.append((allowed, breaker.state))
            return out

        assert drive(CircuitBreaker(threshold=1)) == drive(
            CircuitBreaker(threshold=1)
        )

    def test_board_tracks_rungs_independently(self):
        board = BreakerBoard(threshold=1, probe_interval=2)
        assert board.allow("greedy")
        board.record("greedy", ok=False)
        assert not board.allow("greedy")
        assert board.allow("sampled")
        states = board.states()
        assert states["greedy"]["state"] == "open"
        assert states["sampled"]["state"] == "closed"
        board.reset()
        assert board.allow("greedy")

    def test_validation(self):
        with pytest.raises(SolverError):
            CircuitBreaker(threshold=0)
        with pytest.raises(SolverError):
            CircuitBreaker(probe_interval=0)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_codec_round_trip(self):
        message = {"op": "plan", "id": 7, "queries": [["a", "b"]]}
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.BadRequestError):
            protocol.decode_message(b"not json\n")
        with pytest.raises(protocol.BadRequestError):
            protocol.decode_message(b"[1, 2]\n")

    def test_parse_request_validates_op(self):
        with pytest.raises(protocol.BadRequestError):
            protocol.parse_request({"op": "explode", "id": 1})
        with pytest.raises(protocol.BadRequestError):
            protocol.parse_request({"id": 1})

    def test_parse_plan_payload_validation(self):
        ok = {"op": "plan", "id": 1, "queries": ["a b", ["c"]]}
        queries, deadline = protocol.parse_plan_payload(ok)
        assert queries == ["a b", ["c"]] and deadline is None
        for bad in (
            {"op": "plan", "id": 1},
            {"op": "plan", "id": 1, "queries": []},
            {"op": "plan", "id": 1, "queries": "a b"},
            {"op": "plan", "id": 1, "queries": [3]},
            {"op": "plan", "id": 1, "queries": ["a"], "deadline_seconds": 0},
            {"op": "plan", "id": 1, "queries": ["a"], "deadline_seconds": "x"},
        ):
            with pytest.raises(protocol.BadRequestError):
                protocol.parse_plan_payload(bad)

    def test_error_reply_maps_to_typed_exceptions(self):
        for code, exc_type in (
            ("queue-full", QueueFullError),
            ("deadline-exceeded", DeadlineExceededError),
            ("shutting-down", ShuttingDownError),
        ):
            reply = protocol.error_reply(1, code, "why")
            with pytest.raises(exc_type):
                protocol.raise_error_reply(reply)
        assert protocol.raise_error_reply(protocol.ok_reply(1, {"x": 2})) == {
            "x": 2
        }


# ----------------------------------------------------------------------
# Daemon end-to-end (in-process client)
# ----------------------------------------------------------------------


class TestDaemon:
    def test_plan_stats_ping(self, tmp_path):
        async def scenario():
            config = ServiceConfig(journal_path=str(tmp_path / "w.journal"))
            service = PlannerService(plain_cost(), config)
            await service.start()
            client = PlannerClient(service)
            assert (await client.ping())["pong"] is True
            first = await client.plan(["a b", "c"])
            assert first["seq"] == 0 and first["total_cost"] > 0
            second = await client.plan([["c", "d"]])
            assert second["seq"] == 1
            assert second["total_cost"] >= first["total_cost"]
            stats = await client.stats()
            await service.stop()
            return first, stats

        first, stats = run(scenario())
        assert stats["workload"]["batches"] == 2
        assert stats["requests"]["completed"] == 2
        assert stats["queue_capacity"] == 64
        assert stats["journal"]["appended"] == 2
        assert stats["requests"]["latency"]["total"]["count"] == 2
        assert len(first["state_digest"]) == 32

    def test_queue_full_sheds_with_typed_error(self):
        async def scenario():
            service = PlannerService(plain_cost(), ServiceConfig(queue_depth=2))
            # No worker: the queue stays exactly as stuffed, so the shed
            # path is deterministic (admission is synchronous put_nowait).
            service._queue = asyncio.Queue(maxsize=2)
            loop = asyncio.get_running_loop()
            for i in range(2):
                service._queue.put_nowait(
                    _Pending(
                        f"stuffed{i}",
                        (frozenset({"a"}),),
                        deadline=None,
                        admitted_at=0.0,
                        future=loop.create_future(),
                    )
                )
            client = PlannerClient(service)
            with pytest.raises(QueueFullError):
                await client.plan(["a b"])
            return service.snapshot()

        stats = run(scenario())
        assert stats["requests"]["shed"] == 1
        assert stats["requests"]["admitted"] == 0

    def test_expired_requests_not_journaled(self, tmp_path):
        async def scenario():
            config = ServiceConfig(journal_path=str(tmp_path / "w.journal"))
            service = PlannerService(plain_cost(), config)
            await service.start()
            loop = asyncio.get_running_loop()
            pending = _Pending(
                "late",
                (frozenset({"a"}),),
                deadline=-1.0,
                admitted_at=0.0,
                future=loop.create_future(),
            )
            service._queue.put_nowait(pending)
            reply = await pending.future
            stats = service.snapshot()
            await service.stop()
            return reply, stats

        reply, stats = run(scenario())
        assert reply["error"]["code"] == "deadline-exceeded"
        assert stats["requests"]["expired_unapplied"] == 1
        assert read_journal(str(tmp_path / "w.journal")).records == ()

    def test_deadline_exceeded_is_typed_and_daemon_survives(self):
        async def scenario():
            chaos = ServiceChaos(plan={("post-journal", 0): "stall"}, stall_seconds=0.6)
            service = PlannerService(plain_cost(), ServiceConfig(), chaos=chaos)
            await service.start()
            client = PlannerClient(service)
            with pytest.raises(DeadlineExceededError):
                await client.plan(["a b"], deadline_seconds=0.1)
            # The daemon is alive and still serves (at-least-once: the
            # stalled batch applied even though its requester timed out).
            later = await client.plan([["c"]])
            stats = await client.stats()
            await service.stop()
            return later, stats

        later, stats = run(scenario())
        assert stats["requests"]["deadline_exceeded"] == 1
        assert stats["workload"]["batches"] == 2
        assert later["total_cost"] > 0

    def test_same_fingerprint_requests_coalesce(self):
        async def scenario():
            chaos = ServiceChaos(plan={("post-journal", 0): "stall"}, stall_seconds=0.4)
            service = PlannerService(
                plain_cost(), ServiceConfig(batch_window=8), chaos=chaos
            )
            await service.start()
            client = PlannerClient(service)
            blocker = asyncio.create_task(client.plan(["a"]))
            await asyncio.sleep(0.1)  # worker is now stalled on batch 0
            twin_a = asyncio.create_task(client.plan(["a b", "c"]))
            twin_b = asyncio.create_task(client.plan(["c", "b a"]))
            other = asyncio.create_task(client.plan([["d"]]))
            results = await asyncio.gather(blocker, twin_a, twin_b, other)
            stats = await client.stats()
            await service.stop()
            return results, stats

        (blocker, twin_a, twin_b, other), stats = run(scenario())
        # The twins denote identical component work → one journaled batch.
        assert twin_a["seq"] == twin_b["seq"]
        assert {twin_a["coalesced"], twin_b["coalesced"]} == {False, True}
        assert other["seq"] != twin_a["seq"]
        assert stats["requests"]["coalesced"] == 1
        assert stats["workload"]["batches"] == 3  # not 4

    def test_drain_rejects_new_work(self):
        async def scenario():
            service = PlannerService(plain_cost(), ServiceConfig())
            await service.start()
            client = PlannerClient(service)
            await client.plan(["a"])
            assert (await client.drain())["drained"] is True
            stats = await client.stats()
            with pytest.raises(ShuttingDownError):
                await client.plan(["b"])
            await service.stop()
            return stats

        stats = run(scenario())
        assert stats["draining"] is True

    def test_bad_query_spec_is_bad_request(self):
        async def scenario():
            service = PlannerService(plain_cost(), ServiceConfig())
            await service.start()
            client = PlannerClient(service)
            with pytest.raises(protocol.BadRequestError):
                await client.plan([""])
            await service.stop()

        run(scenario())

    def test_breaker_states_in_stats(self):
        async def scenario():
            service = PlannerService(plain_cost(), ServiceConfig())
            await service.start()
            service.breakers.record("greedy", ok=False)
            client = PlannerClient(service)
            stats = await client.stats()
            await service.stop()
            return stats

        stats = run(scenario())
        assert stats["breakers"]["greedy"]["consecutive_failures"] == 1


# ----------------------------------------------------------------------
# Crash recovery (in-process)
# ----------------------------------------------------------------------


class TestRecovery:
    def drive(self, tmp_path, batches, chaos=None, cost=None):
        async def scenario():
            config = ServiceConfig(journal_path=str(tmp_path / "w.journal"))
            service = PlannerService(cost or plain_cost(), config, chaos=chaos)
            await service.start()
            client = PlannerClient(service)
            for batch in batches:
                await client.plan(batch)
            digest = service.planner.state_digest()
            await service.stop()
            return digest

        return run(scenario())

    def test_restart_reproduces_state_bit_identically(self, tmp_path):
        live_digest = self.drive(
            tmp_path, [["a b", "c"], [["c", "d"]], ["b"]]
        )
        restarted = PlannerService(
            plain_cost(),
            ServiceConfig(journal_path=str(tmp_path / "w.journal")),
        )
        assert restarted.recover() == 3
        assert restarted.planner.state_digest() == live_digest
        restarted.journal.close()

    def test_recovery_with_damaged_tail_matches_reference(self, tmp_path):
        self.drive(tmp_path, [["a b"], ["c"], [["c", "d"]]])
        path = str(tmp_path / "w.journal")
        corrupt_journal_tail(path)
        recovered = read_journal(path)
        assert recovered.dropped_entries == 1
        assert len(recovered.records) == 3
        config = ServiceConfig(journal_path=path)
        reference = replay_reference(plain_cost(), config, recovered.records)
        restarted = PlannerService(plain_cost(), config)
        restarted.recover()
        assert restarted.planner.state_digest() == reference.state_digest()
        restarted.journal.close()

    def test_recovered_daemon_keeps_planning(self, tmp_path):
        self.drive(tmp_path, [["a b"], ["c"]])

        async def scenario():
            config = ServiceConfig(journal_path=str(tmp_path / "w.journal"))
            service = PlannerService(plain_cost(), config)
            await service.start()
            client = PlannerClient(service)
            result = await client.plan([["c", "d"]])
            stats = await client.stats()
            await service.stop()
            return result, stats

        result, stats = run(scenario())
        assert stats["recovered_batches"] == 2
        assert result["seq"] == 2  # seq continues after the journal

    def test_service_chaos_schedule_is_deterministic(self):
        a = ServiceChaos(seed=4, kill_rate=0.3, stall_rate=0.3)
        b = ServiceChaos(seed=4, kill_rate=0.3, stall_rate=0.3)
        keys = [(seam, seq) for seam in SERVICE_SEAMS for seq in range(20)]
        assert [a.decision(*k) for k in keys] == [b.decision(*k) for k in keys]
        assert set(SERVICE_CHAOS_MODES) == {"kill", "stall"}

    def test_service_chaos_validation(self):
        with pytest.raises(SolverError):
            ServiceChaos(kill_rate=0.8, stall_rate=0.8)
        with pytest.raises(SolverError):
            ServiceChaos(plan={("mid-air", 0): "kill"})
        with pytest.raises(SolverError):
            ServiceChaos(plan={("pre-journal", 0): "meteor"})


# ----------------------------------------------------------------------
# The real thing: SIGKILL a daemon subprocess, assert recovery.
# ----------------------------------------------------------------------


class TestDrill:
    def test_sigkill_recovery_equivalence(self, tmp_path):
        from repro.service.drill import run_drill

        summary = run_drill(seed=5, workdir=str(tmp_path), kill_seq=1, batches=3)
        assert summary["ok"] is True
        assert summary["recovered_digest"] == summary["reference_digest"]
        assert summary["journaled_records"] == 2
        assert summary["dropped_tail_entries"] == 1

    def test_drill_workload_is_seed_deterministic(self):
        assert workload_batch(3, 0) == workload_batch(3, 0)
        assert workload_batch(3, 0) != workload_batch(4, 0)
        cost = drill_cost(3)
        config = drill_config("unused")
        assert config.default_deadline_seconds is None
        assert cost.cost(frozenset({"p1"})) == drill_cost(3).cost(
            frozenset({"p1"})
        )
