"""Tests for the remove-and-repair refinement solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance
from repro.solvers import ExactSolver, GeneralSolver, RefinedSolver, refine_selection
from tests.conftest import random_instance


class TestRefineSelection:
    def test_removes_overpriced_classifier(self):
        """A greedy-ish selection holding the expensive pair gets
        repaired with the cheap singletons."""
        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 5})
        refined, moves = refine_selection(
            instance, {frozenset(("a", "b"))}
        )
        assert refined == {frozenset("a"), frozenset("b")}
        assert moves == 1

    def test_keeps_good_selection(self):
        instance = MC3Instance(["a b"], {"a": 3, "b": 3, "a b": 5})
        start = {frozenset(("a", "b"))}
        refined, moves = refine_selection(instance, start)
        assert refined == start
        assert moves == 0

    def test_repair_reuses_other_selections(self):
        """Removing AB is worthwhile only because A is already selected
        for another query."""
        instance = MC3Instance(
            ["a b", "a c"],
            {"a": 2, "b": 3, "c": 1, "a b": 4, "a c": 2},
        )
        start = {frozenset(("a", "b")), frozenset("a"), frozenset("c")}
        refined, _moves = refine_selection(instance, start)
        cost = instance.total_weight(refined)
        assert cost <= instance.total_weight(start)


class TestRefinedSolver:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_never_worse_than_general_never_beats_exact(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        general = GeneralSolver(wsc_method="greedy").solve(instance)
        refined = RefinedSolver(wsc_method="greedy").solve(instance)
        exact = ExactSolver().solve(instance)
        refined.solution.verify(instance)
        assert refined.cost <= general.cost + 1e-9
        assert refined.cost >= exact.cost - 1e-9

    def test_details_report_moves(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 5})
        result = RefinedSolver().solve(instance)
        assert "refinement_moves" in result.details
        assert result.details["refinement_saving"] >= 0

    def test_registered(self):
        from repro.solvers import make_solver

        solver = make_solver("mc3-refined", max_rounds=2)
        assert solver.max_rounds == 2
