"""Tests for every MC³ solver: correctness against the exact oracle and
the brute-force oracle, approximation guarantees, baselines, registry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost, UniformCost
from repro.exceptions import (
    InfeasibleSolutionError,
    ReductionError,
    SolverError,
    UncoverableQueryError,
)
from repro.extensions import instance_guarantee
from repro.solvers import (
    ExactSolver,
    GeneralSolver,
    K2Solver,
    LocalGreedySolver,
    MixedSolver,
    PropertyOrientedSolver,
    QueryOrientedSolver,
    ShortFirstSolver,
    available_solvers,
    make_solver,
)
from tests.conftest import brute_force_optimum, random_instance


class TestExactSolver:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_force(self, seed):
        instance = random_instance(seed, num_properties=5, num_queries=3, max_length=3)
        result = ExactSolver().solve(instance)
        assert result.cost == pytest.approx(brute_force_optimum(instance))

    def test_example_11(self, example11):
        result = ExactSolver().solve(example11)
        assert result.cost == 7.0
        assert result.solution.classifiers == frozenset(
            {
                frozenset(("adidas", "chelsea")),
                frozenset(("adidas", "juventus")),
                frozenset(("white",)),
            }
        )


class TestK2Solver:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_optimal_on_random_k2(self, seed):
        instance = random_instance(seed, num_properties=7, num_queries=6, max_length=2)
        exact = ExactSolver().solve(instance).cost
        result = K2Solver().solve(instance)
        assert result.cost == pytest.approx(exact)

    @pytest.mark.parametrize(
        "algorithm", ["dinic", "edmonds_karp", "push_relabel", "capacity_scaling"]
    )
    def test_all_kernels_agree(self, algorithm):
        instance = random_instance(42, num_properties=8, num_queries=8, max_length=2)
        baseline = K2Solver().solve(instance).cost
        assert K2Solver(flow_algorithm=algorithm).solve(instance).cost == baseline

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=15, deadline=None)
    def test_no_preprocessing_still_optimal(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=2)
        assert K2Solver(preprocess_steps=()).solve(instance).cost == pytest.approx(
            ExactSolver().solve(instance).cost
        )

    def test_rejects_long_queries(self):
        instance = MC3Instance(["a b c"], UniformCost(1.0))
        with pytest.raises(ReductionError):
            K2Solver().solve(instance)

    def test_handles_singleton_queries_without_prep(self):
        instance = MC3Instance(["a", "a b"], {"a": 2, "b": 1, "a b": 9})
        result = K2Solver(preprocess_steps=()).solve(instance)
        assert result.cost == 3.0

    def test_missing_classifiers_instance(self):
        """Pairs unavailable for some queries, singletons for others."""
        instance = MC3Instance(
            ["a b", "b c"], {"a": 4, "b": 4, "c": 1, "a b": 2}
        )  # bc must use B + C, ab can use the pair
        result = K2Solver().solve(instance)
        assert result.cost == ExactSolver().solve(instance).cost

    def test_uncoverable_raises(self):
        instance = MC3Instance(["a b"], {"a": 1})
        with pytest.raises(UncoverableQueryError):
            K2Solver().solve(instance)


class TestGeneralSolver:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_feasible_and_within_guarantee(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=4)
        exact = ExactSolver().solve(instance).cost
        result = GeneralSolver().solve(instance)
        result.solution.verify(instance)
        assert result.cost >= exact - 1e-9
        assert result.cost <= instance_guarantee(instance) * exact + 1e-6

    @pytest.mark.parametrize("method", ["greedy", "lp", "primal_dual", "best_of"])
    def test_all_methods_feasible(self, method):
        instance = random_instance(33, num_properties=7, num_queries=6, max_length=4)
        result = GeneralSolver(wsc_method=method).solve(instance)
        result.solution.verify(instance)

    def test_best_of_not_worse_than_arms(self):
        instance = random_instance(12, num_properties=7, num_queries=7, max_length=4)
        best = GeneralSolver(wsc_method="best_of").solve(instance).cost
        greedy = GeneralSolver(wsc_method="greedy").solve(instance).cost
        lp = GeneralSolver(wsc_method="lp").solve(instance).cost
        assert best <= min(greedy, lp) + 1e-9

    def test_lp_size_limit_falls_back(self):
        instance = random_instance(5, num_properties=6, num_queries=5, max_length=3)
        result = GeneralSolver(lp_size_limit=0).solve(instance)
        assert "primal_dual" in result.details["f_approximation_modes"] or (
            result.details["components"] == 0
        )

    def test_prune_only_improves(self):
        instance = random_instance(9, num_properties=7, num_queries=7, max_length=4)
        pruned = GeneralSolver(wsc_method="lp", prune=True).solve(instance).cost
        raw = GeneralSolver(wsc_method="lp", prune=False).solve(instance).cost
        assert pruned <= raw + 1e-9

    def test_example_11_optimal(self, example11):
        assert GeneralSolver().solve(example11).cost == 7.0

    def test_details_structure(self):
        instance = random_instance(3, num_properties=5, num_queries=4, max_length=3)
        details = GeneralSolver().solve(instance).details
        assert set(details) >= {"preprocess", "components", "wsc_method", "wins"}


class TestShortFirst:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=15, deadline=None)
    def test_feasible(self, seed):
        instance = random_instance(seed, num_properties=7, num_queries=6, max_length=4)
        result = ShortFirstSolver().solve(instance)
        result.solution.verify(instance)

    def test_all_short_equals_k2(self):
        instance = random_instance(8, num_properties=7, num_queries=6, max_length=2)
        assert ShortFirstSolver().solve(instance).cost == pytest.approx(
            K2Solver().solve(instance).cost
        )

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ShortFirstSolver(threshold=0)

    def test_details(self):
        instance = random_instance(4, num_properties=6, num_queries=6, max_length=4)
        details = ShortFirstSolver().solve(instance).details
        assert "threshold" in details


class TestBaselines:
    def test_property_oriented_selects_all_singletons(self):
        instance = MC3Instance(["a b", "c"], UniformCost(2.0))
        result = PropertyOrientedSolver().solve(instance)
        assert result.cost == 6.0
        assert all(len(c) == 1 for c in result.solution.classifiers)

    def test_property_oriented_requires_singletons(self):
        instance = MC3Instance(["a b"], {"a": 1, "a b": 1})
        with pytest.raises(UncoverableQueryError):
            PropertyOrientedSolver().solve(instance)

    def test_query_oriented_one_per_query(self):
        instance = MC3Instance(["a b", "c"], UniformCost(2.0))
        result = QueryOrientedSolver().solve(instance)
        assert result.cost == 4.0
        assert frozenset(("a", "b")) in result.solution.classifiers

    def test_query_oriented_requires_full_classifiers(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1})
        with pytest.raises(UncoverableQueryError):
            QueryOrientedSolver().solve(instance)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_mixed_optimal_on_uniform_costs(self, seed):
        instance = random_instance(seed, num_properties=7, num_queries=6, max_length=2)
        uniform = instance.with_cost(UniformCost(1.0))
        assert MixedSolver().solve(uniform).cost == pytest.approx(
            ExactSolver().solve(uniform).cost
        )

    def test_mixed_rejects_varying_costs(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 2, "a b": 1})
        with pytest.raises(SolverError):
            MixedSolver().solve(instance)

    def test_mixed_rejects_long_queries(self):
        instance = MC3Instance(["a b c"], UniformCost(1.0))
        with pytest.raises(SolverError):
            MixedSolver().solve(instance)

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=15, deadline=None)
    def test_local_greedy_feasible_and_at_least_optimal(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        result = LocalGreedySolver().solve(instance)
        result.solution.verify(instance)
        assert result.cost >= ExactSolver().solve(instance).cost - 1e-9

    def test_local_greedy_reuses_selections(self):
        """Shared classifiers are bought once."""
        instance = MC3Instance(
            ["a b", "a c"], {"a": 1, "b": 1, "c": 1, "a b": 9, "a c": 9}
        )
        result = LocalGreedySolver().solve(instance)
        assert result.cost == 3.0


class TestRegistry:
    def test_known_names(self):
        names = available_solvers()
        assert "mc3-k2" in names and "mc3-general" in names

    def test_make_solver_kwargs(self):
        solver = make_solver("mc3-k2", flow_algorithm="edmonds_karp")
        assert solver.flow_algorithm == "edmonds_karp"

    def test_unknown_name(self):
        with pytest.raises(SolverError):
            make_solver("nope")

    @pytest.mark.parametrize(
        "name", sorted(set(available_solvers()) - {"mixed", "mc3-k2"})
    )
    def test_every_solver_runs_on_small_instance(self, name, example11):
        # example11 has k = 3; mc3-k2 and mixed have stricter domains and
        # are exercised separately above.
        result = make_solver(name).solve(example11)
        result.solution.verify(example11)

    def test_verification_catches_bad_solver(self, example11):
        """The base-class verify hook must reject infeasible output."""

        class BrokenSolver(K2Solver):
            def _solve(self, instance):
                from repro.core import Solution

                return Solution([], 0.0), {}

        with pytest.raises(InfeasibleSolutionError):
            BrokenSolver().solve(example11)
