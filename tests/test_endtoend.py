"""Tests for catalog simulation and the budget-vs-recall experiment."""

import pytest

from repro.catalog import SearchEngine, catalog_for_load
from repro.core import MC3Instance, UniformCost
from repro.exceptions import DatasetError
from repro.experiments import budget_recall_curve
from tests.conftest import random_instance


@pytest.fixture
def instance():
    return random_instance(5, num_properties=6, num_queries=4, max_length=3)


class TestCatalogForLoad:
    def test_every_query_has_matching_items(self, instance):
        catalog = catalog_for_load(instance, items_per_query=2, seed=1)
        for q in instance.queries:
            assert len(catalog.items_with_latent(q)) >= 2

    def test_item_count(self, instance):
        catalog = catalog_for_load(
            instance, items_per_query=2, distractors=5, seed=1
        )
        assert len(catalog) == 2 * instance.n + 5

    def test_observe_rate_extremes(self, instance):
        full = catalog_for_load(instance, observe_rate=1.0, seed=1)
        assert full.observed_completeness() == 1.0
        empty = catalog_for_load(instance, observe_rate=0.0, seed=1)
        assert empty.observed_completeness() == 0.0

    def test_deterministic(self, instance):
        a = catalog_for_load(instance, seed=3)
        b = catalog_for_load(instance, seed=3)
        assert [item.item_id for item in a] == [item.item_id for item in b]
        assert [sorted(item.observed) for item in a] == [
            sorted(item.observed) for item in b
        ]

    def test_invalid_params(self, instance):
        with pytest.raises(DatasetError):
            catalog_for_load(instance, items_per_query=0)
        with pytest.raises(DatasetError):
            catalog_for_load(instance, observe_rate=1.5)

    def test_full_observation_gives_full_recall(self, instance):
        catalog = catalog_for_load(instance, observe_rate=1.0, seed=2)
        engine = SearchEngine(catalog)
        report = engine.quality(instance.queries)
        assert report.mean_recall == 1.0


class TestBudgetRecallCurve:
    def test_recall_monotone_and_complete_at_full_budget(self):
        figure = budget_recall_curve(
            n=60, budget_fractions=(0.0, 0.5, 1.0), seed=0
        )
        recall = figure.series_by_name("mean search recall").ys()
        assert recall == sorted(recall)
        assert recall[-1] == pytest.approx(1.0)
        assert recall[0] < 1.0  # missing annotations hurt before planning

    def test_covered_weight_tracks_budget(self):
        figure = budget_recall_curve(
            n=60, budget_fractions=(0.0, 0.5, 1.0), seed=0
        )
        covered = figure.series_by_name("covered query-weight share").ys()
        assert covered[0] == 0.0
        assert covered[-1] == pytest.approx(1.0)
        assert covered == sorted(covered)
