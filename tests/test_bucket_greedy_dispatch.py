"""Tests for the bucketed greedy [CKW'10] and GeneralSolver's k≤2
component dispatch."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, UniformCost
from repro.exceptions import InvalidInstanceError, UncoverableQueryError
from repro.setcover import bucket_greedy_wsc, exact_wsc, greedy_wsc, solve_wsc
from repro.solvers import ExactSolver, GeneralSolver, K2Solver
from tests.conftest import random_instance
from tests.test_setcover import build, random_wsc


class TestBucketGreedy:
    def test_single_covering_set(self):
        instance = build([(["a", "b"], 2)])
        solution = bucket_greedy_wsc(instance)
        assert solution.set_ids == (0,)

    def test_zero_cost_sets_first(self):
        instance = build([(["a"], 0), (["a", "b"], 5), (["b"], 1)])
        solution = bucket_greedy_wsc(instance)
        instance.verify_solution(solution)
        assert 0 in solution.set_ids  # the free set is always taken first

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidInstanceError):
            bucket_greedy_wsc(build([(["a"], 1)]), epsilon=0)

    def test_uncoverable_raises(self):
        instance = build([(["a"], 1)])
        instance.add_element("orphan")
        with pytest.raises(UncoverableQueryError):
            bucket_greedy_wsc(instance)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_feasible_and_near_greedy(self, seed):
        instance = random_wsc(seed)
        solution = bucket_greedy_wsc(instance, epsilon=0.1)
        instance.verify_solution(solution)
        # The bucketed greedy carries a (1+eps)(ln Δ + 1) guarantee.
        optimum = exact_wsc(instance).cost
        bound = 1.1 * (math.log(max(2, instance.degree())) + 1)
        assert solution.cost <= bound * optimum + 1e-9

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=15, deadline=None)
    def test_small_epsilon_is_stepwise_ratio_optimal(self, seed):
        # With a vanishing epsilon every selection is ratio-optimal at
        # the moment it is made, up to the (1+eps) bucket width.  The
        # *final cost* can still differ from plain greedy's: equal
        # ratios are broken by bucket-queue order rather than lowest
        # set id, and a tie cascade may select a different cover (seed
        # 145 yields 10.0 vs. greedy's 7.0).  So the honest invariant
        # is stepwise, not end-to-end.
        instance = random_wsc(seed)
        epsilon = 1e-6
        bucketed = bucket_greedy_wsc(instance, epsilon=epsilon)
        instance.verify_solution(bucketed)
        plain = greedy_wsc(instance)
        instance.verify_solution(plain)
        covered = set()
        for set_id in bucketed.set_ids:
            fresh = [e for e in instance.set_members(set_id) if e not in covered]
            assert fresh  # never selects a set covering nothing new
            available = []
            for other in range(instance.num_sets):
                gain = sum(
                    1 for e in instance.set_members(other) if e not in covered
                )
                if gain:
                    available.append(instance.set_cost(other) / gain)
            ratio = instance.set_cost(set_id) / len(fresh)
            assert ratio <= min(available) * (1 + epsilon) + 1e-9
            covered.update(instance.set_members(set_id))

    def test_available_via_facade(self):
        instance = random_wsc(3)
        solution = solve_wsc(instance, method="bucket_greedy")
        instance.verify_solution(solution)


class TestK2Dispatch:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_exact_on_pure_k2_instances(self, seed):
        """With every component at k <= 2, dispatch makes GeneralSolver
        exact."""
        instance = random_instance(seed, num_properties=7, num_queries=6, max_length=2)
        dispatched = GeneralSolver(dispatch_k2=True).solve(instance)
        exact = ExactSolver().solve(instance)
        assert dispatched.cost == pytest.approx(exact.cost)

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=15, deadline=None)
    def test_never_worse_than_plain_general(self, seed):
        instance = random_instance(seed, num_properties=7, num_queries=6, max_length=4)
        dispatched = GeneralSolver(dispatch_k2=True).solve(instance)
        plain = GeneralSolver().solve(instance)
        dispatched.solution.verify(instance)
        assert dispatched.cost <= plain.cost + 1e-9

    def test_details_report_dispatch_count(self):
        # Costs chosen so preprocessing cannot resolve the k=2 component
        # (neither the pair nor the singletons dominate).
        instance = MC3Instance(
            ["a b", "x y z"],
            {"a": 2, "b": 2, "a b": 3,
             "x": 2, "y": 2, "z": 2, "x y": 3, "y z": 3, "x z": 3, "x y z": 5},
        )
        result = GeneralSolver(dispatch_k2=True).solve(instance)
        assert result.details["k2_dispatched"] == 1

    def test_disabled_by_default(self):
        instance = MC3Instance(["a b"], {"a": 2, "b": 2, "a b": 3})
        result = GeneralSolver().solve(instance)
        assert result.details["k2_dispatched"] == 0