"""Tests for the dataset generators: published marginals, determinism,
validity."""

import math
from collections import Counter

import pytest

from repro.core import InstanceStats
from repro.datasets import (
    available_datasets,
    bestbuy_like,
    make_dataset,
    private_like,
    private_like_category,
    private_like_short,
    synthetic,
    synthetic_k2,
)
from repro.datasets.composer import CategoryQuerySampler, draw_lengths, zipf_choice
from repro.exceptions import DatasetError

import random


class TestComposer:
    def test_zipf_prefers_head(self):
        rng = random.Random(1)
        draws = Counter(zipf_choice(rng, ["a", "b", "c", "d"], skew=1.0) for _ in range(2000))
        assert draws["a"] > draws["d"]

    def test_sample_query_exact_length(self):
        sampler = CategoryQuerySampler("fashion", random.Random(2))
        for length in (1, 2, 3, 4):
            assert len(sampler.sample_query(length)) == length

    def test_sample_query_rejects_bad_length(self):
        sampler = CategoryQuerySampler("fashion", random.Random(2))
        with pytest.raises(DatasetError):
            sampler.sample_query(0)
        with pytest.raises(DatasetError):
            sampler.sample_query(10_000)

    def test_unknown_category(self):
        with pytest.raises(DatasetError):
            CategoryQuerySampler("groceries", random.Random(0))

    def test_sample_distinct_unique(self):
        sampler = CategoryQuerySampler("electronics", random.Random(3), tail_size=100)
        queries = sampler.sample_distinct([2] * 200)
        assert len(set(queries)) == 200

    def test_length1_avoids_tail(self):
        sampler = CategoryQuerySampler("fashion", random.Random(4), tail_size=500, tail_weight=50.0)
        singles = [sampler.sample_query(1) for _ in range(100)]
        assert all("fashion-t" not in next(iter(q)) for q in singles)

    def test_draw_lengths_distribution(self):
        lengths = draw_lengths(random.Random(5), 4000, {1: 0.5, 2: 0.5})
        counts = Counter(lengths)
        assert set(counts) == {1, 2}
        assert abs(counts[1] / 4000 - 0.5) < 0.05


class TestBestBuy:
    def test_published_marginals(self):
        instance = bestbuy_like(1000, seed=0)
        stats = InstanceStats(instance, sample_costs=100)
        assert stats.n == 1000
        assert stats.max_query_length <= 4
        assert stats.short_fraction >= 0.9
        assert stats.max_cost == 1.0

    def test_uniform_costs(self):
        instance = bestbuy_like(100, seed=1)
        weights = {
            instance.weight(clf)
            for q in instance.queries
            for clf in instance.candidates(q)
        }
        assert weights == {1.0}

    def test_deterministic(self):
        assert list(bestbuy_like(200, seed=5).queries) == list(
            bestbuy_like(200, seed=5).queries
        )

    def test_seeds_differ(self):
        assert list(bestbuy_like(200, seed=5).queries) != list(
            bestbuy_like(200, seed=6).queries
        )

    def test_rejects_bad_n(self):
        with pytest.raises(DatasetError):
            bestbuy_like(0)


class TestPrivate:
    def test_published_marginals(self):
        instance = private_like(3000, seed=0)
        stats = InstanceStats(instance, sample_costs=100)
        assert stats.n == 3000
        assert 1 <= stats.max_query_length <= 6
        assert 0.7 <= stats.short_fraction <= 0.9  # paper: ~80% short
        assert stats.max_cost <= 63 and stats.min_cost >= 1

    def test_costs_are_integers_in_range(self):
        instance = private_like(500, seed=2)
        for q in list(instance.queries)[:50]:
            for clf in instance.candidates(q):
                weight = instance.weight(clf)
                assert 1 <= weight <= 63
                assert weight == int(weight)

    def test_deterministic(self):
        a = private_like(1000, seed=3)
        b = private_like(1000, seed=3)
        assert list(a.queries) == list(b.queries)
        clf = next(iter(a.candidates(a.queries[0])))
        assert a.weight(clf) == b.weight(clf)

    def test_fashion_slice_mostly_short(self):
        instance = private_like_category("fashion", 1000, seed=0)
        stats = InstanceStats(instance, sample_costs=50)
        assert stats.short_fraction >= 0.9

    def test_unknown_category(self):
        with pytest.raises(DatasetError):
            private_like_category("groceries", 100)

    def test_short_restriction(self):
        instance = private_like_short(1000, seed=0)
        assert all(len(q) <= 2 for q in instance.queries)

    def test_rejects_tiny_n(self):
        with pytest.raises(DatasetError):
            private_like(1)


class TestSynthetic:
    def test_length_distribution(self):
        instance = synthetic(4000, seed=0)
        counts = Counter(len(q) for q in instance.queries)
        assert min(counts) == 2
        assert max(counts) <= 10
        # P(len 2) = 1/2: generous tolerance for sampling noise.
        assert abs(counts[2] / 4000 - 0.5) < 0.06
        assert counts[2] > counts[3] > counts[4]

    def test_distinct_queries(self):
        instance = synthetic(3000, seed=1)
        assert instance.n == 3000

    def test_cost_range(self):
        instance = synthetic(100, seed=2)
        q = instance.queries[0]
        for clf in instance.candidates(q):
            assert 1 <= instance.weight(clf) <= 50

    def test_deterministic(self):
        assert list(synthetic(500, seed=4).queries) == list(
            synthetic(500, seed=4).queries
        )

    def test_k2_variant_all_pairs(self):
        instance = synthetic_k2(1000, seed=0)
        assert all(len(q) == 2 for q in instance.queries)

    def test_classifier_cap_respected(self):
        instance = synthetic(200, seed=0, max_classifier_length=3)
        q = max(instance.queries, key=len)
        assert all(len(c) <= 3 for c in instance.candidates(q))

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            synthetic(0)
        with pytest.raises(DatasetError):
            synthetic(10, max_length=1)


class TestRegistry:
    def test_names(self):
        names = available_datasets()
        assert "bestbuy" in names and "synthetic" in names

    def test_make_dataset(self):
        instance = make_dataset("bestbuy", n=50, seed=1)
        assert instance.n == 50

    def test_unknown(self):
        with pytest.raises(DatasetError):
            make_dataset("nope")
