"""Tests for the incremental planner extension."""

import os
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TableCost, UniformCost
from repro.core.costs import HashCost
from repro.exceptions import InvalidInstanceError
from repro.extensions import IncrementalPlanner
from repro.solvers import ExactSolver
from tests.conftest import random_instance


def planner_with(cost, **kwargs):
    return IncrementalPlanner(cost, **kwargs)


class TestBasics:
    def test_single_batch_matches_batch_solver(self):
        cost = TableCost({"a": 1, "b": 2, "a b": 2.5})
        planner = planner_with(cost)
        outcome = planner.add_batch(["a b"])
        assert outcome.incremental_cost == 2.5
        planner.verify()
        assert planner.total_cost == 2.5

    def test_duplicate_queries_ignored(self):
        planner = planner_with(UniformCost(1.0))
        planner.add_batch(["a b"])
        outcome = planner.add_batch(["a b", "b a"])
        assert outcome.new_queries == ()
        assert outcome.incremental_cost == 0.0

    def test_sunk_classifiers_are_free(self):
        cost = TableCost({"a": 5, "b": 5, "c": 1, "a b": 6, "b c": 2})
        planner = planner_with(cost)
        planner.add_batch(["a b"])  # buys A+B or AB
        first_cost = planner.total_cost
        outcome = planner.add_batch(["b c"])
        # b is already paid for in either representation that includes B;
        # in the worst case the planner buys BC at 2 or C at 1.
        assert outcome.incremental_cost <= 2.0
        assert planner.total_cost == first_cost + outcome.incremental_cost

    def test_cumulative_coverage_verified(self):
        planner = planner_with(UniformCost(1.0))
        planner.add_batch(["a b", "c"])
        planner.add_batch(["c d", "e"])
        planner.verify()
        assert len(planner.queries) == 4
        assert len(planner.batches) == 2

    def test_empty_state_replan_rejected(self):
        planner = planner_with(UniformCost(1.0))
        with pytest.raises(InvalidInstanceError):
            planner.replan()


class TestRegret:
    def test_replan_never_beats_batch_on_single_batch(self):
        instance = random_instance(7, num_properties=6, num_queries=5, max_length=3)
        planner = planner_with(instance.cost, solver_name="exact")
        planner.add_batch(instance.queries)
        assert planner.regret() == pytest.approx(1.0)

    def test_incremental_at_least_replanned(self):
        """Splitting into batches can only cost more (with exact solves)."""
        instance = random_instance(11, num_properties=6, num_queries=6, max_length=3)
        planner = planner_with(instance.cost, solver_name="exact")
        half = len(instance.queries) // 2
        planner.add_batch(instance.queries[:half])
        planner.add_batch(instance.queries[half:])
        planner.verify()
        replanned = planner.replan()
        assert planner.total_cost >= replanned.cost - 1e-9
        assert planner.regret() >= 1.0 - 1e-9

    def test_as_solution_prices_base_model(self):
        cost = TableCost({"a": 3, "b": 4})
        planner = planner_with(cost)
        planner.add_batch(["a", "b"])
        solution = planner.as_solution()
        assert solution.cost == 7.0

    def test_max_classifier_length_respected(self):
        planner = planner_with(UniformCost(1.0), max_classifier_length=1)
        planner.add_batch(["a b c"])
        assert all(len(clf) == 1 for clf in planner.built_classifiers)


# ----------------------------------------------------------------------
# State digest + journal-replay equivalence (the service's recovery
# contract lives or dies on these properties)
# ----------------------------------------------------------------------

_PROPS = st.sampled_from([f"p{i}" for i in range(8)])
_QUERY = st.frozensets(_PROPS, min_size=1, max_size=3)
_BATCHES = st.lists(
    st.lists(_QUERY, min_size=0, max_size=4), min_size=1, max_size=5
)

_HASHSEED_SCRIPT = """
import sys
from repro.core.costs import HashCost
from repro.extensions import IncrementalPlanner

batches = [
    [frozenset({"p1", "p2"}), frozenset({"p3"})],
    [frozenset({"p2", "p4"})],
    [],
    [frozenset({"p1"}), frozenset({"p4", "p5", "p6"})],
]
planner = IncrementalPlanner(HashCost(seed=9))
for batch in batches:
    planner.add_batch(batch)
sys.stdout.write(planner.state_digest())
"""


class TestStateDigest:
    def feed(self, batches):
        planner = planner_with(HashCost(seed=7))
        for batch in batches:
            planner.add_batch(batch)
        return planner

    @settings(max_examples=40, deadline=None)
    @given(_BATCHES)
    def test_add_batch_is_order_stable(self, batches):
        """Same journal-ordered batch sequence ⇒ bit-identical state."""
        a, b = self.feed(batches), self.feed(batches)
        assert a.state_digest() == b.state_digest()
        assert a.built_classifiers == b.built_classifiers
        assert a.total_cost == b.total_cost

    @settings(max_examples=40, deadline=None)
    @given(_BATCHES)
    def test_journal_replay_reproduces_state(self, batches):
        """Round-tripping every batch through the on-disk journal format
        and replaying reproduces built_classifiers/total_cost exactly."""
        from repro.service.journal import WorkloadJournal, read_journal

        live = self.feed(batches)
        with tempfile.TemporaryDirectory(prefix="mc3-journal-") as workdir:
            path = os.path.join(workdir, "w.journal")
            with WorkloadJournal(path, fsync=False) as journal:
                for batch in batches:
                    journal.append_batch(batch)
            records = read_journal(path).records
        assert len(records) == len(batches)
        replayed = self.feed([list(r.queries) for r in records])
        assert replayed.state_digest() == live.state_digest()
        assert replayed.built_classifiers == live.built_classifiers
        assert replayed.total_cost == live.total_cost

    def test_digest_sensitive_to_state(self):
        base = self.feed([[frozenset({"p1", "p2"})]])
        more = self.feed([[frozenset({"p1", "p2"})], [frozenset({"p3"})]])
        reordered = self.feed([[frozenset({"p3"})], [frozenset({"p1", "p2"})]])
        assert base.state_digest() != more.state_digest()
        assert more.state_digest() != reordered.state_digest()

    def test_digest_stable_across_hash_seeds(self):
        """The digest is process-portable: subprocesses with different
        PYTHONHASHSEED values agree with this process bit-for-bit."""
        expected = None
        for seed in ("0", "1", "20407"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            digest = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            assert len(digest) == 32
            expected = expected or digest
            assert digest == expected
        planner = IncrementalPlanner(HashCost(seed=9))
        for batch in [
            [frozenset({"p1", "p2"}), frozenset({"p3"})],
            [frozenset({"p2", "p4"})],
            [],
            [frozenset({"p1"}), frozenset({"p4", "p5", "p6"})],
        ]:
            planner.add_batch(batch)
        assert planner.state_digest() == expected

    def test_solver_overrides_apply_to_one_batch_only(self):
        from repro.engine import ResiliencePolicy

        planner = planner_with(HashCost(seed=2))
        planner.add_batch(
            [frozenset({"p1", "p2"})],
            solver_overrides={
                "resilience": ResiliencePolicy(on_error="degrade")
            },
        )
        # The override must not leak into the planner's stored kwargs.
        assert "resilience" not in planner.solver_kwargs
        planner.add_batch([frozenset({"p3"})])
        planner.verify()
