"""Tests for the incremental planner extension."""

import pytest

from repro.core import TableCost, UniformCost
from repro.exceptions import InvalidInstanceError
from repro.extensions import IncrementalPlanner
from repro.solvers import ExactSolver
from tests.conftest import random_instance


def planner_with(cost, **kwargs):
    return IncrementalPlanner(cost, **kwargs)


class TestBasics:
    def test_single_batch_matches_batch_solver(self):
        cost = TableCost({"a": 1, "b": 2, "a b": 2.5})
        planner = planner_with(cost)
        outcome = planner.add_batch(["a b"])
        assert outcome.incremental_cost == 2.5
        planner.verify()
        assert planner.total_cost == 2.5

    def test_duplicate_queries_ignored(self):
        planner = planner_with(UniformCost(1.0))
        planner.add_batch(["a b"])
        outcome = planner.add_batch(["a b", "b a"])
        assert outcome.new_queries == ()
        assert outcome.incremental_cost == 0.0

    def test_sunk_classifiers_are_free(self):
        cost = TableCost({"a": 5, "b": 5, "c": 1, "a b": 6, "b c": 2})
        planner = planner_with(cost)
        planner.add_batch(["a b"])  # buys A+B or AB
        first_cost = planner.total_cost
        outcome = planner.add_batch(["b c"])
        # b is already paid for in either representation that includes B;
        # in the worst case the planner buys BC at 2 or C at 1.
        assert outcome.incremental_cost <= 2.0
        assert planner.total_cost == first_cost + outcome.incremental_cost

    def test_cumulative_coverage_verified(self):
        planner = planner_with(UniformCost(1.0))
        planner.add_batch(["a b", "c"])
        planner.add_batch(["c d", "e"])
        planner.verify()
        assert len(planner.queries) == 4
        assert len(planner.batches) == 2

    def test_empty_state_replan_rejected(self):
        planner = planner_with(UniformCost(1.0))
        with pytest.raises(InvalidInstanceError):
            planner.replan()


class TestRegret:
    def test_replan_never_beats_batch_on_single_batch(self):
        instance = random_instance(7, num_properties=6, num_queries=5, max_length=3)
        planner = planner_with(instance.cost, solver_name="exact")
        planner.add_batch(instance.queries)
        assert planner.regret() == pytest.approx(1.0)

    def test_incremental_at_least_replanned(self):
        """Splitting into batches can only cost more (with exact solves)."""
        instance = random_instance(11, num_properties=6, num_queries=6, max_length=3)
        planner = planner_with(instance.cost, solver_name="exact")
        half = len(instance.queries) // 2
        planner.add_batch(instance.queries[:half])
        planner.add_batch(instance.queries[half:])
        planner.verify()
        replanned = planner.replan()
        assert planner.total_cost >= replanned.cost - 1e-9
        assert planner.regret() >= 1.0 - 1e-9

    def test_as_solution_prices_base_model(self):
        cost = TableCost({"a": 3, "b": 4})
        planner = planner_with(cost)
        planner.add_batch(["a", "b"])
        solution = planner.as_solution()
        assert solution.cost == 7.0

    def test_max_classifier_length_respected(self):
        planner = planner_with(UniformCost(1.0), max_classifier_length=1)
        planner.add_batch(["a b c"])
        assert all(len(clf) == 1 for clf in planner.built_classifiers)
