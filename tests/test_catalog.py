"""Tests for the catalog application substrate (items, simulated
classifiers, search, planner)."""

import pytest

from repro.catalog import (
    Catalog,
    ClassifierPlanner,
    ClassifierSuite,
    Item,
    SearchEngine,
    TrainedClassifier,
)
from repro.core import TableCost, UniformCost, query
from repro.exceptions import DatasetError


def small_catalog():
    catalog = Catalog()
    catalog.add(Item("i1", "white adidas juventus shirt",
                     latent=["white", "adidas", "juventus", "shirt"],
                     observed=["shirt"]))
    catalog.add(Item("i2", "blue chelsea shirt",
                     latent=["blue", "chelsea", "shirt"],
                     observed=["shirt", "blue"]))
    catalog.add(Item("i3", "white nike shirt",
                     latent=["white", "nike", "shirt"],
                     observed=["shirt", "white", "nike"]))
    return catalog


class TestItem:
    def test_observed_must_be_subset_of_latent(self):
        with pytest.raises(DatasetError):
            Item("x", "t", latent=["a"], observed=["b"])

    def test_satisfies(self):
        item = Item("x", "t", latent=["a", "b"])
        assert item.satisfies(frozenset("ab"))
        assert not item.satisfies(frozenset("ac"))

    def test_annotate(self):
        item = Item("x", "t", latent=["a", "b"])
        item.annotate(["a"])
        assert "a" in item.observed
        assert item.missing() == frozenset("b")

    def test_annotate_contradiction_rejected(self):
        item = Item("x", "t", latent=["a"])
        with pytest.raises(DatasetError):
            item.annotate(["z"])


class TestCatalog:
    def test_duplicate_id_rejected(self):
        catalog = Catalog()
        catalog.add(Item("x", "t", latent=["a"]))
        with pytest.raises(DatasetError):
            catalog.add(Item("x", "t2", latent=["b"]))

    def test_get_unknown(self):
        with pytest.raises(DatasetError):
            Catalog().get("missing")

    def test_items_with_latent(self):
        catalog = small_catalog()
        matches = catalog.items_with_latent(frozenset(["white", "shirt"]))
        assert {item.item_id for item in matches} == {"i1", "i3"}

    def test_completeness(self):
        catalog = small_catalog()
        assert 0 < catalog.observed_completeness() < 1


class TestTrainedClassifier:
    def test_perfect_prediction(self):
        clf = TrainedClassifier(frozenset(["white", "adidas"]), training_cost=3.0)
        item = Item("x", "t", latent=["white", "adidas", "shirt"])
        assert clf.predict(item)
        other = Item("y", "t", latent=["white", "shirt"])
        assert not clf.predict(other)

    def test_error_rate_flips_deterministically(self):
        clf = TrainedClassifier(frozenset(["a"]), 1.0, error_rate=0.5, seed=1)
        item = Item("x", "t", latent=["a"])
        assert clf.predict(item) == clf.predict(item)

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            TrainedClassifier(frozenset(), 1.0)
        with pytest.raises(DatasetError):
            TrainedClassifier(frozenset("a"), 1.0, error_rate=1.0)


class TestClassifierSuite:
    def test_train_pays_model_costs(self):
        suite = ClassifierSuite.train(
            [frozenset("a"), frozenset("ab")], TableCost({"a": 2, "a b": 5})
        )
        assert suite.total_training_cost == 7.0

    def test_duplicate_rejected(self):
        suite = ClassifierSuite([TrainedClassifier(frozenset("a"), 1.0)])
        with pytest.raises(DatasetError):
            suite.add(TrainedClassifier(frozenset("a"), 2.0))

    def test_completion_annotates_positives_only(self):
        catalog = small_catalog()
        suite = ClassifierSuite(
            [TrainedClassifier(frozenset(["white", "adidas"]), 1.0)]
        )
        added = suite.complete_catalog(catalog)
        assert added == 2  # white+adidas on i1 only
        assert catalog.get("i1").observed >= {"white", "adidas"}
        assert "adidas" not in catalog.get("i3").observed

    def test_audit_counts(self):
        catalog = small_catalog()
        suite = ClassifierSuite([TrainedClassifier(frozenset(["white"]), 1.0)])
        audit = suite.audit(catalog)
        assert audit["tp"] == 2 and audit["tn"] == 1
        assert audit["fp"] == 0 and audit["fn"] == 0


class TestSearchEngine:
    def test_search_uses_observed_only(self):
        engine = SearchEngine(small_catalog())
        assert engine.search(query("white shirt")) == ["i3"]

    def test_recall(self):
        engine = SearchEngine(small_catalog())
        assert engine.recall(query("white shirt")) == 0.5
        assert engine.recall(query("nonexistent")) == 1.0  # vacuous

    def test_invalidate_refreshes(self):
        catalog = small_catalog()
        engine = SearchEngine(catalog)
        assert engine.search(query("white shirt")) == ["i3"]
        catalog.get("i1").annotate(["white"])
        engine.invalidate()
        assert engine.search(query("white shirt")) == ["i1", "i3"]

    def test_quality_report(self):
        engine = SearchEngine(small_catalog())
        report = engine.quality([query("white shirt"), query("blue shirt")])
        assert 0 <= report.mean_recall <= 1
        assert report.fully_answered == 1  # blue shirt fully observed


class TestPlanner:
    def test_end_to_end_full_recall(self):
        catalog = small_catalog()
        planner = ClassifierPlanner(catalog, UniformCost(1.0), solver_name="mc3-general")
        query_log = [query("white adidas juventus shirt"), query("blue chelsea shirt")]
        outcome = planner.plan_and_apply(query_log)
        assert outcome.before.mean_recall < 1.0
        assert outcome.after.mean_recall == 1.0
        assert outcome.annotations_added > 0
        assert "classifiers" in outcome.summary()

    def test_instance_construction(self):
        planner = ClassifierPlanner(small_catalog(), UniformCost(1.0))
        instance = planner.build_instance([query("a b")])
        assert instance.n == 1
