"""Tests for the overlapping-construction-costs extension."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost, UniformCost
from repro.exceptions import InvalidInstanceError
from repro.extensions import SharedLabelingCost, shared_cost_local_search
from repro.solvers import GeneralSolver
from tests.conftest import random_instance


@pytest.fixture
def instance():
    return MC3Instance(
        ["a b", "a c"],
        {"a": 4, "b": 2, "c": 2, "a b": 5, "a c": 5},
        name="shared",
    )


class TestSetCost:
    def test_sigma_zero_is_additive(self, instance):
        cost = SharedLabelingCost(instance, sigma=0.0)
        selection = [frozenset(("a", "b")), frozenset(("a", "c"))]
        assert cost.set_cost(selection) == 10.0

    def test_sharing_discounts_repeated_properties(self, instance):
        cost = SharedLabelingCost(instance, sigma=1.0)
        selection = [frozenset(("a", "b")), frozenset(("a", "c"))]
        # Each pair's cost 5 splits 2.5/2.5; property a is shared, so one
        # of the 2.5 shares is saved entirely.
        assert cost.set_cost(selection) == pytest.approx(7.5)

    def test_subadditive_never_exceeds_sum(self, instance):
        cost = SharedLabelingCost(instance, sigma=0.7)
        selection = [frozenset(("a", "b")), frozenset(("a", "c")), frozenset("a")]
        additive = sum(instance.weight(c) for c in selection)
        assert cost.set_cost(selection) <= additive

    def test_monotone_in_sigma(self, instance):
        selection = [frozenset(("a", "b")), frozenset(("a", "c"))]
        values = [
            SharedLabelingCost(instance, sigma=s).set_cost(selection)
            for s in (0.0, 0.3, 0.6, 1.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_difficulty_shifts_shares(self, instance):
        # Property a carries almost all of each pair's work; sharing it
        # saves almost everything duplicated.
        cost = SharedLabelingCost(
            instance, sigma=1.0, property_difficulty={"a": 100, "b": 1, "c": 1}
        )
        selection = [frozenset(("a", "b")), frozenset(("a", "c"))]
        assert cost.set_cost(selection) < 6.0

    def test_infinite_member_is_infinite(self, instance):
        cost = SharedLabelingCost(instance, sigma=0.5)
        assert cost.set_cost([frozenset(("b", "c"))]) == math.inf

    def test_marginal_cost(self, instance):
        cost = SharedLabelingCost(instance, sigma=1.0)
        base = [frozenset(("a", "b"))]
        marginal = cost.marginal_cost(frozenset(("a", "c")), base)
        assert marginal == pytest.approx(2.5)  # 5 minus the shared a-share
        assert cost.marginal_cost(frozenset(("a", "b")), base) == 0.0

    def test_invalid_params(self, instance):
        with pytest.raises(InvalidInstanceError):
            SharedLabelingCost(instance, sigma=1.5)
        with pytest.raises(InvalidInstanceError):
            SharedLabelingCost(instance, property_difficulty={"a": 0})


class TestLocalSearch:
    def test_requires_feasible_start(self, instance):
        cost = SharedLabelingCost(instance, sigma=0.5)
        with pytest.raises(InvalidInstanceError):
            shared_cost_local_search(instance, cost, start=[])

    def test_never_worse_and_stays_feasible(self):
        for seed in range(6):
            instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
            start = GeneralSolver().solve(instance).solution.classifiers
            cost = SharedLabelingCost(instance, sigma=0.6)
            result = shared_cost_local_search(instance, cost, start)
            assert result.cost <= result.start_cost + 1e-9
            from repro.core import verify_cover

            verify_cover(instance.queries, result.classifiers)

    def test_decompose_move_exploits_sharing(self):
        """With strong sharing, singleton reuse beats disjoint pairs."""
        instance = MC3Instance(
            ["a b", "a c", "a d"],
            {
                "a": 6, "b": 6, "c": 6, "d": 6,
                "a b": 7, "a c": 7, "a d": 7,
            },
        )
        # Additive optimum: the three pairs (21) beat singletons (24).
        start = GeneralSolver().solve(instance).solution.classifiers
        assert sum(instance.weight(c) for c in start) == 21.0
        cost = SharedLabelingCost(instance, sigma=1.0)
        result = shared_cost_local_search(instance, cost, start)
        # Under full sharing the three pairs cost 21 - 2*3.5 = 14; the
        # search must do at least as well as the start's shared price.
        assert result.cost <= cost.set_cost(start) + 1e-9

    def test_drop_move_removes_redundant(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 5})
        cost = SharedLabelingCost(instance, sigma=0.0)
        start = [frozenset("a"), frozenset("b"), frozenset(("a", "b"))]
        result = shared_cost_local_search(instance, cost, start)
        assert frozenset(("a", "b")) not in result.classifiers
        assert result.cost == 2.0

    def test_merge_move_available(self):
        """When the union classifier is cheap, merging two picks wins."""
        instance = MC3Instance(["a b"], {"a": 5, "b": 5, "a b": 3})
        cost = SharedLabelingCost(instance, sigma=0.0)
        result = shared_cost_local_search(
            instance, cost, start=[frozenset("a"), frozenset("b")]
        )
        assert result.classifiers == frozenset({frozenset(("a", "b"))})
        assert result.cost == 3.0

    def test_improvement_metric(self, instance):
        cost = SharedLabelingCost(instance, sigma=0.5)
        start = GeneralSolver().solve(instance).solution.classifiers
        result = shared_cost_local_search(instance, cost, start)
        assert 0.0 <= result.improvement < 1.0
