"""Tests for the problem reductions: MC³(k=2) → bipartite WVC → max-flow,
MC³ → WSC, and the SC → MC³ hardness constructions used as oracles."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost, UniformCost
from repro.exceptions import ReductionError, UncoverableQueryError
from repro.reductions import (
    ANCHOR_PROPERTY,
    BipartiteWVC,
    mc3_solution_to_sc_theorem51,
    mc3_to_bipartite_wvc,
    mc3_to_wsc,
    sc_to_mc3_theorem51,
    sc_to_mc3_theorem52,
    solve_bipartite_wvc,
    wsc_solution_to_mc3,
)
from repro.setcover import exact_wsc, solve_wsc
from repro.solvers import ExactSolver
from tests.conftest import random_instance


def brute_force_sc(sets, universe):
    """Unweighted set-cover optimum by exhaustive search."""
    best = math.inf
    for size in range(len(sets) + 1):
        for combo in itertools.combinations(range(len(sets)), size):
            covered = set()
            for index in combo:
                covered.update(sets[index])
            if covered >= set(universe):
                best = min(best, size)
    return best


class TestBipartiteWVCReduction:
    def test_structure(self):
        cost = TableCost({"x": 1, "y": 2, "x y": 3})
        graph = mc3_to_bipartite_wvc([frozenset("xy")], cost)
        assert len(graph.left) == 2
        assert len(graph.right) == 1
        assert len(graph.edges) == 2

    def test_rejects_long_queries(self):
        with pytest.raises(ReductionError):
            mc3_to_bipartite_wvc([frozenset("abc")], UniformCost(1.0))

    def test_rejects_uncoverable(self):
        # Neither the pair nor both singletons are available.
        cost = TableCost({"x": 1})
        with pytest.raises(UncoverableQueryError):
            mc3_to_bipartite_wvc([frozenset("xy")], cost)

    def test_cover_weight_and_validity(self):
        cost = TableCost({"x": 1, "y": 2, "x y": 3})
        graph = mc3_to_bipartite_wvc([frozenset("xy")], cost)
        cover = {frozenset("x"), frozenset("y")}
        assert graph.is_cover(cover)
        assert graph.cover_weight(cover) == 3.0
        assert not graph.is_cover({frozenset("x")})

    def test_unknown_cover_node_rejected(self):
        graph = BipartiteWVC()
        with pytest.raises(ReductionError):
            graph.cover_weight({frozenset("zz")})


class TestWVCToFlow:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_cover_valid_and_weight_matches_flow(self, seed):
        instance = random_instance(
            seed, num_properties=6, num_queries=5, max_length=2
        )
        queries = [q for q in instance.queries if len(q) == 2]
        if not queries:
            return
        graph = mc3_to_bipartite_wvc(queries, instance.cost)
        for algorithm in ("dinic", "edmonds_karp", "push_relabel", "capacity_scaling"):
            cover, value = solve_bipartite_wvc(graph, algorithm=algorithm)
            assert graph.is_cover(cover)
            assert graph.cover_weight(cover) == pytest.approx(value)

    def test_empty_graph(self):
        cover, value = solve_bipartite_wvc(BipartiteWVC())
        assert cover == set() and value == 0.0

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=20, deadline=None)
    def test_cover_weight_is_minimum(self, seed):
        """Exhaustively verify minimality on tiny instances."""
        instance = random_instance(seed, num_properties=5, num_queries=4, max_length=2)
        queries = [q for q in instance.queries if len(q) == 2]
        if not queries:
            return
        graph = mc3_to_bipartite_wvc(queries, instance.cost)
        _cover, value = solve_bipartite_wvc(graph)
        nodes = list(graph.left) + list(graph.right)
        best = math.inf
        for size in range(len(nodes) + 1):
            for combo in itertools.combinations(nodes, size):
                candidate = set(combo)
                if graph.is_cover(candidate):
                    best = min(best, graph.cover_weight(candidate))
        assert value == pytest.approx(best)


class TestMC3ToWSC:
    def test_figure2_example(self):
        """P = {x,y,z,v}, Q = {xyz, yzv}, all classifiers weight 1."""
        instance = MC3Instance(["x y z", "y z v"], UniformCost(1.0))
        wsc = mc3_to_wsc(instance)
        assert wsc.universe_size == 6  # one element per (property, query)
        # Classifiers relevant to both queries (subsets of the shared yz)
        # cover elements in both; e.g. the set for YZ has 4 members.
        yz_id = next(
            set_id
            for set_id in range(wsc.num_sets)
            if wsc.set_label(set_id) == frozenset(("y", "z"))
        )
        assert len(wsc.set_members(yz_id)) == 4

    def test_frequency_bound(self):
        """f <= 2^(k-1) (Section 5.2)."""
        instance = random_instance(7, num_properties=6, num_queries=5, max_length=3)
        wsc = mc3_to_wsc(instance)
        assert wsc.frequency() <= 2 ** (instance.max_query_length - 1)

    def test_degree_bound(self):
        instance = random_instance(8, num_properties=6, num_queries=5, max_length=3)
        wsc = mc3_to_wsc(instance)
        bound = (instance.max_query_length - 1) * max(1, instance.incidence())
        assert wsc.degree() <= max(bound, instance.max_query_length)

    def test_uncoverable_raises_with_query(self):
        instance = MC3Instance(["a b"], {"a": 1})
        with pytest.raises(UncoverableQueryError) as excinfo:
            mc3_to_wsc(instance)
        assert excinfo.value.query == frozenset(("a", "b"))

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_solution_translation_preserves_cost_and_feasibility(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=4, max_length=3)
        wsc = mc3_to_wsc(instance)
        wsc_solution = solve_wsc(wsc, "greedy")
        mc3_solution = wsc_solution_to_mc3(wsc, wsc_solution, instance)
        mc3_solution.verify(instance)
        assert mc3_solution.cost == pytest.approx(wsc_solution.cost)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_of_optima(self, seed):
        """Exact MC³ optimum == exact WSC optimum of the reduction."""
        instance = random_instance(seed, num_properties=5, num_queries=4, max_length=3)
        wsc = mc3_to_wsc(instance)
        assert exact_wsc(wsc).cost == pytest.approx(
            ExactSolver(preprocess_steps=()).solve(instance).cost
        )


class TestTheorem51:
    def sc_instance(self, seed):
        rng = random.Random(seed)
        universe = [f"e{i}" for i in range(5)]
        sets = []
        # Every element in >= 2 sets keeps the construction in the
        # theorem's f > 1 regime.
        for _ in range(4):
            sets.append(rng.sample(universe, rng.randint(2, 4)))
        membership = {e: sum(e in s for s in sets) for e in universe}
        for element, count in membership.items():
            while count < 2:
                sets.append([element, rng.choice(universe)])
                count += 1
        return sets, universe

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=12, deadline=None)
    def test_costs_match_sc_optimum(self, seed):
        sets, universe = self.sc_instance(seed)
        try:
            instance, name_map = sc_to_mc3_theorem51(sets, universe)
        except ReductionError:
            return  # duplicate membership patterns — the caller must merge
        mc3_opt = ExactSolver().solve(instance)
        sc_opt = brute_force_sc([set(s) for s in sets], universe)
        assert mc3_opt.cost == pytest.approx(sc_opt)
        # The translated set selection must itself cover the universe.
        chosen = mc3_solution_to_sc_theorem51(mc3_opt.solution, name_map)
        covered = set()
        for index in chosen:
            covered.update(sets[index])
        assert covered >= set(universe)
        assert len(chosen) == sc_opt

    def test_query_structure(self):
        instance, _ = sc_to_mc3_theorem51([["e0", "e1"], ["e1"]], ["e0", "e1"])
        for q in instance.queries:
            assert ANCHOR_PROPERTY in q

    def test_rejects_uncovered_element(self):
        with pytest.raises(ReductionError):
            sc_to_mc3_theorem51([["e0"]], ["e0", "e1"])

    def test_rejects_duplicate_membership(self):
        with pytest.raises(ReductionError):
            sc_to_mc3_theorem51([["e0", "e1"]], ["e0", "e1"])


class TestTheorem52:
    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=12, deadline=None)
    def test_single_query_equivalence(self, seed):
        rng = random.Random(seed)
        universe = [f"e{i}" for i in range(5)]
        sets = [rng.sample(universe, rng.randint(1, 4)) for _ in range(5)]
        for element in universe:  # coverability
            if not any(element in s for s in sets):
                sets.append([element])
        instance, _classifiers = sc_to_mc3_theorem52(sets, universe)
        assert instance.n == 1
        mc3_opt = ExactSolver(preprocess_steps=()).solve(instance)
        assert mc3_opt.cost == pytest.approx(
            brute_force_sc([set(s) for s in sets], universe)
        )

    def test_rejects_empty_universe(self):
        with pytest.raises(ReductionError):
            sc_to_mc3_theorem52([], [])

    def test_rejects_unknown_elements(self):
        with pytest.raises(ReductionError):
            sc_to_mc3_theorem52([["zz"]], ["e0"])
