"""Tests for Solution/SolverResult and JSON/CSV (de)serialisation."""

import json
import math

import pytest

from repro.core import (
    MC3Instance,
    Solution,
    SolverResult,
    TableCost,
    UniformCost,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_solution,
    save_instance,
    save_solution,
    solution_from_dict,
    solution_to_dict,
)
from repro.datasets import (
    instance_from_files,
    load_cost_table_csv,
    load_query_log,
    save_cost_table_csv,
    save_query_log,
)
from repro.exceptions import DatasetError, InfeasibleSolutionError


@pytest.fixture
def instance():
    return MC3Instance(["a b", "c"], {"a": 1, "b": 2, "a b": 2.5, "c": 1}, name="t")


class TestSolution:
    def test_from_instance_prices(self, instance):
        solution = Solution.from_instance([frozenset("ab"), frozenset("c")], instance)
        assert solution.cost == 3.5

    def test_verify_passes(self, instance):
        Solution.from_instance([frozenset("ab"), frozenset("c")], instance).verify(
            instance
        )

    def test_verify_rejects_uncovered(self, instance):
        solution = Solution.from_instance([frozenset("ab")], instance)
        with pytest.raises(InfeasibleSolutionError):
            solution.verify(instance)

    def test_verify_rejects_wrong_cost(self, instance):
        solution = Solution([frozenset("ab"), frozenset("c")], 99.0)
        with pytest.raises(InfeasibleSolutionError):
            solution.verify(instance)

    def test_rejects_negative_cost(self):
        with pytest.raises(InfeasibleSolutionError):
            Solution([frozenset("a")], -1.0)

    def test_union_disjoint(self):
        a = Solution([frozenset("a")], 1.0)
        b = Solution([frozenset("b")], 2.0)
        combined = a.union(b)
        assert combined.cost == 3.0
        assert len(combined) == 2

    def test_union_overlapping_rejected(self):
        a = Solution([frozenset("a")], 1.0)
        with pytest.raises(InfeasibleSolutionError):
            a.union(a)

    def test_equality_and_hash(self):
        a = Solution([frozenset("a")], 1.0)
        b = Solution([frozenset("a")], 1.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_sorted_labels(self):
        solution = Solution([frozenset("b"), frozenset(("a", "c"))], 0.0)
        assert solution.sorted_labels() == ["a+c", "b"]


class TestSolverResult:
    def test_cost_passthrough(self):
        result = SolverResult(Solution([frozenset("a")], 1.5), "x", 0.1)
        assert result.cost == 1.5
        assert result.details == {}


class TestInstanceJson:
    def test_round_trip(self, instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert set(loaded.queries) == set(instance.queries)
        assert loaded.weight(frozenset("ab")) == 2.5
        assert loaded.name == "t"

    def test_dict_round_trip_default_cost(self):
        instance = MC3Instance(["a"], TableCost({"a": 1}, default=7.0))
        payload = instance_to_dict(instance)
        assert payload["default_cost"] == 7.0
        loaded = instance_from_dict(payload)
        assert loaded.weight(frozenset("z")) == 7.0

    def test_lazy_cost_model_rejected(self):
        instance = MC3Instance(["a"], UniformCost(1.0))
        with pytest.raises(DatasetError):
            instance_to_dict(instance)

    def test_malformed_payload(self):
        with pytest.raises(DatasetError):
            instance_from_dict({"costs": {}})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(DatasetError):
            load_instance(path)


class TestSolutionJson:
    def test_round_trip(self, tmp_path):
        solution = Solution([frozenset(("a", "b")), frozenset("c")], 3.5)
        path = tmp_path / "solution.json"
        save_solution(solution, path)
        loaded = load_solution(path)
        assert loaded == solution
        assert loaded.cost == 3.5

    def test_dict_shape(self):
        payload = solution_to_dict(Solution([frozenset(("b", "a"))], 1.0))
        assert payload == {"cost": 1.0, "classifiers": ["a+b"]}

    def test_malformed(self):
        with pytest.raises(DatasetError):
            solution_from_dict({"classifiers": ["a"]})


class TestQueryLogFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.txt"
        queries = [frozenset(("b", "a")), frozenset("c")]
        save_query_log(queries, path)
        assert load_query_log(path) == queries

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("# comment\n\na b\n")
        assert load_query_log(path) == [frozenset(("a", "b"))]

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError):
            load_query_log(path)


class TestCostCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "costs.csv"
        table = TableCost({"a": 1.0, "a+b": 2.0})
        save_cost_table_csv(table, path)
        loaded = load_cost_table_csv(path)
        assert loaded.cost(frozenset(("a", "b"))) == 2.0
        assert loaded.cost(frozenset("z")) == math.inf

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "costs.csv"
        path.write_text("classifier,cost\na,1\nb,not-a-number\n")
        with pytest.raises(DatasetError):
            load_cost_table_csv(path)

    def test_instance_from_files(self, tmp_path):
        log = tmp_path / "log.txt"
        log.write_text("a b\n")
        csv_path = tmp_path / "costs.csv"
        csv_path.write_text("classifier,cost\na,1\nb,1\n")
        instance = instance_from_files(log, csv_path)
        assert instance.n == 1
        assert instance.weight(frozenset("a")) == 1.0
