"""The content-addressed component-solution cache (PR 7).

Four contracts, roughly in order of importance:

1. **Fingerprint canonicality** — ``component_fingerprint`` is invariant
   under query reordering and ``PYTHONHASHSEED``, and sensitive to every
   output-affecting knob (costs, solver token, route, backend, rung).
2. **Bit-identity** — a warm solve equals a cold solve equals an
   uncached solve, under resilience, parallel dispatch, and either
   kernel backend; chaos runs bypass the cache entirely.
3. **Store mechanics** — LRU/byte eviction, disk atomicity, corrupt
   entries decoding as misses, stats/clear.
4. **Plumbing** — telemetry section, picklable specs, the incremental
   planner's warm re-solve path, the ``mc3 cache`` CLI.
"""

import json
import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost
from repro.core.bitspace import PRIMARY_RUNG, component_fingerprint
from repro.core.costs import CallableCost, OverlayCost, UniformCost
from repro.devtools.chaos import ChaosInjector
from repro.engine import ResiliencePolicy
from repro.engine.cache import (
    CacheConfig,
    DiskSolutionCache,
    MemorySolutionCache,
    cache_token_of,
    decode_entry,
    encode_entry,
    resolve_cache,
)
from repro.extensions.incremental import IncrementalPlanner
from repro.solvers import make_solver

from tests.strategies import mc3_instances

pytestmark = []


def fingerprint(instance, **kwargs):
    kwargs.setdefault("solver_token", ("mc3-general", "best_of", 50_000, True))
    kwargs.setdefault("backend", "pyjit")
    return component_fingerprint(instance, **kwargs)


# ----------------------------------------------------------------------
# 1. Fingerprint canonicality
# ----------------------------------------------------------------------


class TestFingerprint:
    @given(mc3_instances(max_queries=5), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_invariant_under_query_reordering(self, instance, rng):
        shuffled = list(instance.queries)
        rng.shuffle(shuffled)
        reordered = MC3Instance(shuffled, instance.cost)
        assert fingerprint(instance) == fingerprint(reordered)

    def test_invariant_under_hash_seed(self, tmp_path):
        # The same tiny component fingerprinted in subprocesses with
        # different PYTHONHASHSEED values must agree byte-for-byte —
        # the whole point of RPL204.  Both cost paths are exercised:
        # the table content-token and the enumerated fallback.
        script = tmp_path / "fp.py"
        script.write_text(
            "from repro.core import MC3Instance, TableCost\n"
            "from repro.core.costs import CallableCost\n"
            "from repro.core.bitspace import component_fingerprint\n"
            "cost = {'a': 3, 'b': 2, 'a b': 4, 'c': 1, 'a c': 2.5}\n"
            "inst = MC3Instance(['a b', 'a c'], TableCost(cost))\n"
            "opaque = MC3Instance(['a b', 'a c'],"
            " CallableCost(lambda clf: float(len(clf))))\n"
            "print(component_fingerprint(inst, solver_token=('s', 1)))\n"
            "print(component_fingerprint(opaque, solver_token=('s', 1)))\n"
        )
        outputs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.join(os.getcwd(), "src"),
                            env.get("PYTHONPATH")) if p
            )
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_sensitive_to_costs(self):
        base = {"a": 3.0, "b": 2.0, "a b": 4.0}
        bumped = dict(base, b=2.5)
        one = MC3Instance(["a b"], TableCost(base))
        two = MC3Instance(["a b"], TableCost(bumped))
        assert fingerprint(one) != fingerprint(two)

    def test_sensitive_to_every_knob(self):
        instance = MC3Instance(["a b"], TableCost({"a": 3, "b": 2, "a b": 4}))
        reference = fingerprint(instance)
        assert fingerprint(instance, solver_token=("other", 1)) != reference
        assert fingerprint(instance, route="exact-k2") != reference
        assert fingerprint(instance, backend="array") != reference
        assert fingerprint(instance, rung="fallback:greedy") != reference
        capped = MC3Instance(
            ["a b"], TableCost({"a": 3, "b": 2, "a b": 4}), max_classifier_length=1
        )
        assert fingerprint(capped) != reference

    def test_overlay_edits_change_fingerprint(self):
        table = TableCost({"a": 3, "b": 2, "a b": 4})
        plain = MC3Instance(["a b"], OverlayCost(table))
        overlay = OverlayCost(table)
        overlay.select(frozenset({"a"}))
        selected = MC3Instance(["a b"], overlay)
        assert fingerprint(plain) != fingerprint(selected)

    def test_token_and_enumerated_paths_never_collide(self):
        # A CallableCost that prices identically to a table still gets a
        # different (domain-separated) fingerprint — collisions between
        # the two encodings are structurally impossible, and the cache
        # treats that as a miss, never as corruption.
        table = {"a": 3.0, "b": 2.0, "a b": 4.0}
        priced = MC3Instance(["a b"], TableCost(table))
        opaque = MC3Instance(
            ["a b"], CallableCost(lambda clf: table.get(frozenset(clf), float("inf")))
        )
        assert priced.cost_content_token() is not None
        assert opaque.cost_content_token() is None
        assert fingerprint(priced) != fingerprint(opaque)

    @given(mc3_instances(max_queries=4))
    @settings(max_examples=20, deadline=None)
    def test_primary_rung_is_the_default(self, instance):
        assert fingerprint(instance) == fingerprint(instance, rung=PRIMARY_RUNG)


# ----------------------------------------------------------------------
# 2. Bit-identity: warm == cold == uncached
# ----------------------------------------------------------------------


def outcome_of(result):
    return (frozenset(result.solution.classifiers), result.cost)


class TestBitIdentity:
    @given(mc3_instances(max_queries=5))
    @settings(max_examples=25, deadline=None)
    def test_warm_equals_cold_equals_uncached(self, instance):
        store = MemorySolutionCache()
        plain = make_solver("mc3-general").solve(instance)
        cold = make_solver("mc3-general", cache=store).solve(instance)
        warm = make_solver("mc3-general", cache=store).solve(instance)
        assert outcome_of(plain) == outcome_of(cold) == outcome_of(warm)
        warm_cache = warm.details["engine"]["cache"]
        assert warm_cache["hits"] + warm_cache["uncacheable"] == warm.details[
            "components"
        ]

    @given(mc3_instances(max_queries=4))
    @settings(max_examples=15, deadline=None)
    def test_warm_hit_equals_parallel_solve(self, instance):
        store = MemorySolutionCache()
        make_solver("mc3-general", cache=store).solve(instance)
        warm = make_solver("mc3-general", cache=store).solve(instance)
        parallel = make_solver("mc3-general", jobs=4).solve(instance)
        assert outcome_of(warm) == outcome_of(parallel)

    @pytest.mark.skipif(
        "array" not in __import__(
            "repro.core.kernels.registry", fromlist=["available_backends"]
        ).available_backends(),
        reason="numpy backend unavailable",
    )
    @given(mc3_instances(max_queries=4))
    @settings(max_examples=10, deadline=None)
    def test_pyjit_entries_serve_array_identically(self, instance):
        # Backends are bit-identical by contract, but their fingerprints
        # differ (the backend is an output-affecting knob) — so an
        # array-backend solve must never *hit* a pyjit entry, and both
        # must produce the same answer from disjoint entries.
        store = MemorySolutionCache()
        pyjit_cold = make_solver("mc3-general", backend="pyjit", cache=store).solve(
            instance
        )
        array_cold = make_solver("mc3-general", backend="array", cache=store).solve(
            instance
        )
        assert array_cold.details["engine"]["cache"]["hits"] == 0
        assert outcome_of(pyjit_cold) == outcome_of(array_cold)

    def test_resilient_non_chaos_runs_use_cache(self, example11):
        store = MemorySolutionCache()
        policy = ResiliencePolicy()
        cold = make_solver("mc3-general", resilience=policy, cache=store).solve(
            example11
        )
        warm = make_solver("mc3-general", resilience=policy, cache=store).solve(
            example11
        )
        plain = make_solver("mc3-general").solve(example11)
        assert outcome_of(cold) == outcome_of(warm) == outcome_of(plain)
        assert warm.details["engine"]["cache"]["hits"] > 0

    def test_chaos_bypasses_cache(self, example11):
        store = MemorySolutionCache()
        make_solver("mc3-general", cache=store).solve(example11)
        warmed = store.stats()["entries"]
        assert warmed > 0
        policy = ResiliencePolicy(chaos=ChaosInjector(seed=7, fault_rate=0.3))
        result = make_solver(
            "mc3-general", resilience=policy, cache=store
        ).solve(example11)
        # No cache section in telemetry, no new entries, no hits burned.
        assert "cache" not in result.details["engine"]
        assert store.stats()["entries"] == warmed
        assert store.stats()["hits"] == 0

    def test_degraded_outcomes_are_never_inserted(self, example11):
        # Every component's primary rung fails; fallbacks answer.  The
        # solve succeeds degraded — and the cache must stay empty.
        store = MemorySolutionCache()
        policy = ResiliencePolicy(
            chaos=ChaosInjector(seed=0, fault_rate=1.0), on_error="degrade"
        )
        make_solver("mc3-general", resilience=policy, cache=store).solve(example11)
        assert store.stats()["entries"] == 0


# ----------------------------------------------------------------------
# 3. Store mechanics
# ----------------------------------------------------------------------


class TestMemoryStore:
    def test_lru_entry_eviction(self):
        store = MemorySolutionCache(max_entries=2)
        store.put("fp1", b"one")
        store.put("fp2", b"two")
        assert store.get("fp1") == b"one"  # refresh fp1
        store.put("fp3", b"three")  # evicts fp2, the LRU entry
        assert store.get("fp2") is None
        assert store.get("fp1") == b"one"
        assert store.get("fp3") == b"three"
        assert store.stats()["evictions"] == 1

    def test_byte_budget_eviction(self):
        store = MemorySolutionCache(max_entries=100, max_bytes=10)
        store.put("fp1", b"aaaaaa")
        store.put("fp2", b"bbbbbb")  # 12 bytes total > 10: fp1 evicted
        assert store.get("fp1") is None
        assert store.get("fp2") == b"bbbbbb"

    def test_oversized_blob_refused(self):
        store = MemorySolutionCache(max_bytes=4)
        assert store.put("fp", b"too large to ever fit") is False
        assert store.stats()["entries"] == 0

    def test_put_refuses_existing_fingerprint(self):
        store = MemorySolutionCache()
        assert store.put("fp", b"first") is True
        assert store.put("fp", b"second") is False
        assert store.get("fp") == b"first"

    def test_clear(self):
        store = MemorySolutionCache()
        store.put("fp", b"blob")
        assert store.clear() == 1
        assert store.get("fp") is None

    def test_invalidate_drops_entry_and_counts(self):
        store = MemorySolutionCache(max_bytes=10)
        store.put("fp1", b"aaaaaa")
        assert store.invalidate("fp1") is True
        assert store.get("fp1") is None
        assert store.stats()["corrupt_evictions"] == 1
        # The dead bytes stop counting against the budget: both of
        # these now fit where they would have evicted each other.
        store.put("fp2", b"bbbb")
        store.put("fp3", b"cccc")
        assert store.get("fp2") == b"bbbb"
        assert store.get("fp3") == b"cccc"

    def test_invalidate_missing_entry_is_a_noop(self):
        store = MemorySolutionCache()
        assert store.invalidate("absent") is False
        assert store.stats()["corrupt_evictions"] == 0


class TestDiskStore:
    def test_roundtrip_and_sharding(self, tmp_path):
        store = DiskSolutionCache(str(tmp_path))
        store.put("abcdef123", b"payload")
        assert store.get("abcdef123") == b"payload"
        assert (tmp_path / "ab" / "abcdef123.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path, example11):
        store = DiskSolutionCache(str(tmp_path))
        solver = make_solver("mc3-general", cache=store)
        solver.solve(example11)
        paths = sorted(tmp_path.rglob("*.json"))
        assert paths
        paths[0].write_text("{not json")
        # decode_entry treats the mangled blob as a miss, so a warm run
        # quietly re-solves (and the answer stays right).
        warm = make_solver("mc3-general", cache=store).solve(example11)
        plain = make_solver("mc3-general").solve(example11)
        assert outcome_of(warm) == outcome_of(plain)

    def test_corrupt_entry_is_unlinked_and_counted(self, tmp_path, example11):
        store = DiskSolutionCache(str(tmp_path))
        make_solver("mc3-general", cache=store).solve(example11)
        paths = sorted(tmp_path.rglob("*.json"))
        assert paths
        victim = paths[0]
        victim.write_text("{not json")
        before = victim.read_text()
        make_solver("mc3-general", cache=store).solve(example11)
        # The engine evicted the corrupt file on lookup and then
        # re-inserted a fresh entry for the re-solved component.
        assert store.stats()["corrupt_evictions"] == 1
        assert victim.exists() and victim.read_text() != before
        # A third run is a pure hit: nothing left to evict.
        make_solver("mc3-general", cache=store).solve(example11)
        assert store.stats()["corrupt_evictions"] == 1

    def test_invalidate_unlinks_file_and_counts(self, tmp_path):
        store = DiskSolutionCache(str(tmp_path))
        store.put("aa11", b"payload")
        assert store.invalidate("aa11") is True
        assert not (tmp_path / "aa" / "aa11.json").exists()
        assert store.stats()["corrupt_evictions"] == 1
        assert store.invalidate("aa11") is False
        assert store.stats()["corrupt_evictions"] == 1

    def test_byte_budget_evicts_oldest(self, tmp_path):
        store = DiskSolutionCache(str(tmp_path), max_bytes=64)
        store.put("aa11", b"x" * 40)
        os.utime(next(tmp_path.rglob("aa11.json")), (1, 1))  # age it
        store.put("bb22", b"y" * 40)  # 80 bytes > 64: oldest evicted
        assert store.get("aa11") is None
        assert store.get("bb22") == b"y" * 40

    def test_stats_and_clear(self, tmp_path):
        store = DiskSolutionCache(str(tmp_path))
        store.put("aa11", b"abc")
        stats = store.stats()
        assert stats["kind"] == "disk"
        assert stats["entries"] == 1
        assert stats["bytes"] >= 3
        assert store.clear() == 1
        assert store.stats()["entries"] == 0


class TestEntryCodec:
    def test_roundtrip(self):
        classifiers = frozenset({frozenset({"a"}), frozenset({"b", "c"})})
        details = {"bitspace": {"properties": 3}, "wsc": {"winner": "greedy"}}
        blob = encode_entry("fp", classifiers, details)
        assert blob is not None
        decoded = decode_entry(blob, "fp")
        assert decoded is not None
        assert decoded[0] == classifiers
        assert decoded[1] == details

    def test_identical_solutions_encode_identically(self):
        classifiers = frozenset({frozenset({"a"}), frozenset({"b"})})
        one = encode_entry("fp", classifiers, {"x": 1, "y": 2})
        two = encode_entry("fp", frozenset(sorted(classifiers, key=sorted)), {"y": 2, "x": 1})
        assert one == two

    def test_unserializable_details_refused(self):
        blob = encode_entry("fp", frozenset(), {"bad": object()})
        assert blob is None

    def test_wrong_fingerprint_is_a_miss(self):
        blob = encode_entry("fp1", frozenset({frozenset({"a"})}), {})
        assert decode_entry(blob, "fp2") is None

    def test_garbage_is_a_miss(self):
        assert decode_entry(b"\x00\xffgarbage", "fp") is None


# ----------------------------------------------------------------------
# 4. Plumbing
# ----------------------------------------------------------------------


class TestPlumbing:
    def test_telemetry_section(self, example11):
        store = MemorySolutionCache()
        result = make_solver("mc3-general", cache=store).solve(example11)
        section = result.details["engine"]["cache"]
        assert section["kind"] == "memory"
        assert section["misses"] == section["inserts"] > 0
        assert section["hits"] == 0
        assert 0.0 <= section["hit_rate"] <= 1.0
        assert section["store"]["entries"] == section["inserts"]

    def test_uncached_run_has_no_section(self, example11):
        # Pin cache="off" so the assertion holds even when the suite runs
        # with a process-wide default (REPRO_SOLUTION_CACHE=memory in CI).
        result = make_solver("mc3-general", cache="off").solve(example11)
        assert "cache" not in result.details["engine"]

    def test_cache_config_pickles(self):
        config = CacheConfig(backend="disk", directory="/tmp/x", max_mb=8.0)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_resolve_cache_memoizes_per_config(self):
        one = resolve_cache(CacheConfig(backend="memory"))
        two = resolve_cache(CacheConfig(backend="memory"))
        assert one is two

    def test_resolve_off_is_none(self):
        assert resolve_cache("off") is None
        assert resolve_cache(CacheConfig(backend="off")) is None

    def test_cache_token_of(self):
        assert cache_token_of(object()) is None
        solver = make_solver("mc3-general")
        assert cache_token_of(solver) == (
            "mc3-general",
            solver.wsc_method,
            solver.lp_size_limit,
            solver.prune,
        )

    def test_every_registered_solver_accepts_cache_kwarg(self):
        from repro.solvers.registry import available_solvers

        # Queries of length <= 2 keep mc3-k2 in play; uniform costs keep
        # the Mixed baseline in play.
        instance = MC3Instance(
            ["a b", "c"], TableCost({"a": 1, "b": 1, "a b": 1, "c": 1})
        )
        store = MemorySolutionCache()
        for name in available_solvers():
            kwargs = {"redundancy": 1} if name == "mc3-robust" else {}
            solver = make_solver(name, cache=store, **kwargs)
            solver.solve(instance)

    def test_incremental_planner_warm_replan(self):
        cost = TableCost(
            {"a": 3, "b": 2, "c": 4, "d": 1, "a b": 4, "c d": 4.5},
            default=float("inf"),
        )
        store = MemorySolutionCache()
        planner = IncrementalPlanner(cost, cache=store)
        planner.add_batch(["a b"])
        planner.add_batch(["c d"])
        first = planner.replan()
        hits_after_first = store.stats()["hits"]
        # Nothing changed between replans, so every component of the
        # second one fingerprints identically and is served warm.
        second = planner.replan()
        uncached = IncrementalPlanner(cost)
        uncached.add_batch(["a b"])
        uncached.add_batch(["c d"])
        assert planner.built_classifiers == uncached.built_classifiers
        assert planner.total_cost == uncached.total_cost
        assert outcome_of(first) == outcome_of(second)
        assert store.stats()["hits"] > hits_after_first

    def test_cli_cache_stats_and_clear(self, tmp_path, capsys, example11):
        from repro.cli import main

        cache_dir = str(tmp_path / "solutions")
        store = DiskSolutionCache(cache_dir)
        make_solver("mc3-general", cache=store).solve(example11)
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert DiskSolutionCache(cache_dir).stats()["entries"] == 0
