"""Tests for set multi-cover and the robust (r-redundant) MC³ solver."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, UniformCost
from repro.exceptions import InvalidInstanceError, SolverError, UncoverableQueryError
from repro.setcover import (
    WSCInstance,
    exact_multicover,
    greedy_multicover,
    verify_multicover,
)
from repro.solvers import RobustSolver, make_solver, survives_failures
from tests.conftest import random_instance


def build(sets_with_costs):
    instance = WSCInstance()
    for index, (members, cost) in enumerate(sets_with_costs):
        instance.add_set(f"s{index}", members, cost)
    return instance


def random_multicover(seed, num_elements=5, extra_sets=6, max_demand=2):
    rng = random.Random(seed)
    elements = [f"e{i}" for i in range(num_elements)]
    instance = WSCInstance()
    # max_demand unit sets per element guarantee feasibility.
    for copy in range(max_demand):
        for index, element in enumerate(elements):
            instance.add_set(f"unit{copy}-{index}", [element], rng.randint(1, 8))
    for index in range(extra_sets):
        members = rng.sample(elements, rng.randint(1, num_elements))
        instance.add_set(f"s{index}", members, rng.randint(1, 8))
    demands = [rng.randint(0, max_demand) for _ in elements]
    return instance, demands


def brute_force_multicover(instance, demands):
    best = math.inf
    ids = range(instance.num_sets)
    for size in range(instance.num_sets + 1):
        for combo in itertools.combinations(ids, size):
            cost = sum(instance.set_cost(s) for s in combo)
            if cost >= best:
                continue
            counts = [0] * instance.universe_size
            for s in combo:
                for e in instance.set_members(s):
                    counts[e] += 1
            if all(c >= d for c, d in zip(counts, demands)):
                best = cost
    return best


class TestGreedyMulticover:
    def test_demand_one_equals_cover(self):
        instance = build([(["a", "b"], 2), (["a"], 1), (["b"], 1)])
        solution = greedy_multicover(instance, [1, 1])
        verify_multicover(instance, [1, 1], solution)

    def test_demand_two_buys_two_distinct_sets(self):
        instance = build([(["a"], 1), (["a"], 2), (["a"], 3)])
        solution = greedy_multicover(instance, [2])
        assert len(solution.set_ids) == 2
        assert solution.cost == 3.0  # the two cheapest

    def test_zero_demand_buys_nothing(self):
        instance = build([(["a"], 1)])
        solution = greedy_multicover(instance, [0])
        assert solution.set_ids == ()

    def test_infeasible_demand_rejected(self):
        instance = build([(["a"], 1)])
        with pytest.raises(UncoverableQueryError):
            greedy_multicover(instance, [2])

    def test_wrong_demand_length_rejected(self):
        instance = build([(["a"], 1)])
        with pytest.raises(InvalidInstanceError):
            greedy_multicover(instance, [1, 1])

    def test_negative_demand_rejected(self):
        instance = build([(["a"], 1)])
        with pytest.raises(InvalidInstanceError):
            greedy_multicover(instance, [-1])

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_feasible_on_random_instances(self, seed):
        instance, demands = random_multicover(seed)
        solution = greedy_multicover(instance, demands)
        verify_multicover(instance, demands, solution)


class TestExactMulticover:
    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=12, deadline=None)
    def test_matches_brute_force(self, seed):
        instance, demands = random_multicover(seed, num_elements=3, extra_sets=3)
        exact = exact_multicover(instance, demands)
        assert exact.cost == pytest.approx(brute_force_multicover(instance, demands))

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=12, deadline=None)
    def test_greedy_never_beats_exact(self, seed):
        instance, demands = random_multicover(seed, num_elements=4, extra_sets=4)
        greedy = greedy_multicover(instance, demands)
        exact = exact_multicover(instance, demands)
        assert exact.cost <= greedy.cost + 1e-9

    def test_node_limit(self):
        instance, demands = random_multicover(5, num_elements=5, extra_sets=8)
        with pytest.raises(SolverError):
            exact_multicover(instance, demands, node_limit=1)


class TestRobustSolver:
    def test_redundancy_one_is_plain_cover(self):
        instance = random_instance(3, num_properties=6, num_queries=5, max_length=3)
        result = RobustSolver(redundancy=1).solve(instance)
        result.solution.verify(instance)

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=15, deadline=None)
    def test_redundancy_two_survives_any_single_failure(self, seed):
        instance = random_instance(
            seed, num_properties=6, num_queries=5, max_length=3
        )
        if any(len(q) == 1 for q in instance.queries):
            # Singleton queries have a single candidate classifier and
            # cannot be made redundant.
            with pytest.raises(UncoverableQueryError):
                RobustSolver(redundancy=2).solve(instance)
            return
        result = RobustSolver(redundancy=2).solve(instance)
        result.solution.verify(instance)
        assert survives_failures(instance, result.solution, failures=1)

    def test_redundancy_costs_more(self):
        instance = MC3Instance(
            ["a b", "b c"],
            {"a": 1, "b": 1, "c": 1, "a b": 2, "b c": 2},
        )
        plain = make_solver("mc3-general").solve(instance).cost
        robust = RobustSolver(redundancy=2).solve(instance).cost
        assert robust > plain

    def test_invalid_redundancy(self):
        with pytest.raises(SolverError):
            RobustSolver(redundancy=0)

    def test_registered(self):
        solver = make_solver("mc3-robust", redundancy=2)
        assert solver.redundancy == 2

    def test_survives_failures_zero_and_limits(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1, "a b": 2})
        result = RobustSolver(redundancy=1).solve(instance)
        assert survives_failures(instance, result.solution, failures=0)
        with pytest.raises(SolverError):
            survives_failures(instance, result.solution, failures=2)

    def test_insufficient_candidates_reported(self):
        instance = MC3Instance(["a b"], {"a": 1, "b": 1})  # no AB classifier
        with pytest.raises(UncoverableQueryError):
            RobustSolver(redundancy=2).solve(instance)
