"""Tests for the LP-based exact WSC engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.setcover import exact_wsc, exact_wsc_lp
from repro.solvers import ExactSolver
from tests.conftest import random_instance
from tests.test_setcover import build, random_wsc


class TestExactLP:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_matches_combinatorial_exact(self, seed):
        instance = random_wsc(seed)
        assert exact_wsc_lp(instance).cost == pytest.approx(exact_wsc(instance).cost)

    def test_zero_cost_sets(self):
        instance = build([(["a"], 0), (["b"], 3), (["a", "b"], 2)])
        assert exact_wsc_lp(instance).cost == 2.0

    def test_fractional_lp_instance(self):
        """The odd-cycle instance whose LP optimum is fractional (every
        vertex at 1/2): branching is genuinely exercised."""
        # Elements = edges of a 5-cycle, sets = vertices.
        instance = build(
            [
                (["e01", "e40"], 1),
                (["e01", "e12"], 1),
                (["e12", "e23"], 1),
                (["e23", "e34"], 1),
                (["e34", "e40"], 1),
            ]
        )
        solution = exact_wsc_lp(instance)
        assert solution.cost == 3.0  # vertex cover of C5 needs 3 vertices

    def test_node_limit(self):
        instance = random_wsc(1, num_elements=8, num_sets=12)
        with pytest.raises(SolverError):
            exact_wsc_lp(instance, node_limit=0)

    def test_medium_instance_beyond_combinatorial_comfort(self):
        """An instance size where the LP engine stays comfortably inside
        its node budget."""
        instance = random_wsc(7, num_elements=16, num_sets=40)
        solution = exact_wsc_lp(instance, node_limit=500)
        instance.verify_solution(solution)


class TestExactSolverEngine:
    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=12, deadline=None)
    def test_engines_agree(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=3)
        combinatorial = ExactSolver(engine="combinatorial").solve(instance).cost
        lp = ExactSolver(engine="lp").solve(instance).cost
        assert lp == pytest.approx(combinatorial)

    def test_unknown_engine(self):
        with pytest.raises(SolverError):
            ExactSolver(engine="quantum")
