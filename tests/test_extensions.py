"""Tests for the Section 5.3 extensions: bounded classifiers (parameter
analysis) and multi-valued classifiers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MC3Instance, TableCost, UniformCost
from repro.extensions import (
    AttributeSchema,
    approximation_guarantee,
    degree_bound,
    extended_wsc,
    frequency_bound,
    instance_guarantee,
    merge_attributes,
    solve_with_multivalued,
)
from repro.reductions import mc3_to_wsc
from repro.solvers import ExactSolver
from tests.conftest import random_instance


class TestFrequencyBound:
    def test_unbounded_is_power_of_two(self):
        assert frequency_bound(5) == 16

    def test_kprime_two_equals_k(self):
        """Section 5.3: for k' = 2 the frequency bound is k."""
        for k in range(2, 8):
            assert frequency_bound(k, 2) == k

    def test_kprime_equal_k_matches_unbounded(self):
        assert frequency_bound(4, 4) == frequency_bound(4)

    def test_monotone_in_kprime(self):
        values = [frequency_bound(6, kp) for kp in range(1, 7)]
        assert values == sorted(values)

    def test_invalid(self):
        with pytest.raises(ValueError):
            frequency_bound(0)
        with pytest.raises(ValueError):
            frequency_bound(3, 0)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_actual_frequency_within_bound(self, seed):
        instance = random_instance(seed, num_properties=6, num_queries=5, max_length=4)
        wsc = mc3_to_wsc(instance)
        assert wsc.frequency() <= frequency_bound(instance.max_query_length)


class TestDegreeAndGuarantee:
    def test_degree_bound(self):
        assert degree_bound(4, incidence=5) == 15
        assert degree_bound(4, incidence=5, k_prime=2) == 5

    def test_degree_invalid(self):
        with pytest.raises(ValueError):
            degree_bound(3, -1)

    def test_guarantee_small_k_uses_frequency(self):
        # k = 2: f = 2, which beats any ln-based bound for large I.
        assert approximation_guarantee(2, incidence=10_000) == 2.0

    def test_guarantee_large_incidence_uses_log(self):
        value = approximation_guarantee(10, incidence=100)
        assert value < 2 ** 9
        assert value == pytest.approx(math.log(100) + math.log(9) + 1)

    def test_instance_guarantee(self, example11):
        assert instance_guarantee(example11) >= 1.0


SCHEMA = AttributeSchema(
    {"juventus": "team", "chelsea": "team", "white": "color", "adidas": "brand"}
)


class TestAttributeSchema:
    def test_attribute_lookup(self):
        assert SCHEMA.attribute("juventus") == "team"

    def test_unmapped_property_is_own_attribute(self):
        assert SCHEMA.attribute("mystery") == "mystery"

    def test_values_of(self):
        props = ["juventus", "chelsea", "white"]
        assert SCHEMA.values_of("team", props) == ["chelsea", "juventus"]

    def test_merge_query(self):
        merged = SCHEMA.merge_query(frozenset(["juventus", "white", "adidas"]))
        assert merged == frozenset(["team", "color", "brand"])


class TestMergeAttributes:
    def test_produces_attribute_instance(self, example11):
        merged = merge_attributes(
            example11, SCHEMA, {"team": 5, "color": 2, "brand": 4, "brand team": 6}
        )
        assert frozenset(["team", "brand"]) in merged.queries
        assert merged.weight(frozenset(["team"])) == 5

    def test_merged_queries_deduplicate(self):
        instance = MC3Instance(["juventus adidas", "chelsea adidas"], UniformCost(1))
        merged = merge_attributes(instance, SCHEMA, {"team": 1, "brand": 1})
        assert merged.n == 1  # both queries become {team, brand}


class TestExtendedWSC:
    def test_multivalued_set_covers_all_values(self, example11):
        wsc = extended_wsc(example11, SCHEMA, {"team": 4})
        label = ("multivalued", "team")
        set_id = next(
            sid for sid in range(wsc.num_sets) if wsc.set_label(sid) == label
        )
        members = {wsc.element_label(e) for e in wsc.set_members(set_id)}
        # team values appear in both queries: juventus in q0, chelsea in q1
        assert any(prop == "juventus" for prop, _q in members)
        assert any(prop == "chelsea" for prop, _q in members)

    def test_infinite_cost_skipped(self, example11):
        wsc_with = extended_wsc(example11, SCHEMA, {"team": 4})
        wsc_without = extended_wsc(example11, SCHEMA, {"team": math.inf})
        assert wsc_with.num_sets == wsc_without.num_sets + 1


class TestSolveWithMultivalued:
    def test_cheap_multivalued_selected(self, example11):
        selection = solve_with_multivalued(
            example11, SCHEMA, {"team": 2, "brand": 3, "color": 3}
        )
        assert "team" in selection.multivalued_attributes
        assert selection.cost < ExactSolver().solve(example11).cost

    def test_expensive_multivalued_ignored(self, example11):
        selection = solve_with_multivalued(
            example11, SCHEMA, {"team": 60, "brand": 60, "color": 60}
        )
        assert selection.multivalued_attributes == []
        # Falls back to the pure-binary optimum (7, Example 1.1).
        assert selection.cost == pytest.approx(7.0)

    def test_solution_covers_all_queries(self, example11):
        """Binary picks + multivalued attributes jointly cover the load."""
        selection = solve_with_multivalued(
            example11, SCHEMA, {"team": 2, "brand": 3, "color": 3}
        )
        for q in example11.queries:
            remaining = set(q)
            for clf in selection.binary_classifiers:
                if clf <= q:
                    remaining -= clf
            for attribute in selection.multivalued_attributes:
                remaining -= {
                    p for p in q if SCHEMA.attribute(p) == attribute
                }
            assert not remaining
