"""Tests for repro.core.costs and the dataset cost models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import (
    CallableCost,
    HashCost,
    LengthCappedCost,
    OverlayCost,
    TableCost,
    UniformCost,
    ZeroedCost,
    parse_classifier_key,
    validate_weight,
)
from repro.datasets.costmodels import SubAdditiveHashCost
from repro.exceptions import InvalidInstanceError

CLF = st.frozensets(st.sampled_from([f"p{i}" for i in range(6)]), min_size=1, max_size=4)


class TestValidateWeight:
    def test_accepts_zero(self):
        assert validate_weight(0) == 0.0

    def test_accepts_inf(self):
        assert validate_weight(math.inf) == math.inf

    def test_rejects_negative(self):
        with pytest.raises(InvalidInstanceError):
            validate_weight(-1)

    def test_rejects_nan(self):
        with pytest.raises(InvalidInstanceError):
            validate_weight(float("nan"))

    def test_rejects_bool(self):
        with pytest.raises(InvalidInstanceError):
            validate_weight(True)

    def test_rejects_string(self):
        with pytest.raises(InvalidInstanceError):
            validate_weight("3")


class TestParseClassifierKey:
    def test_single_word(self):
        assert parse_classifier_key("adidas") == frozenset({"adidas"})

    def test_whitespace_split(self):
        assert parse_classifier_key("a b") == frozenset({"a", "b"})

    def test_plus_split(self):
        assert parse_classifier_key("a+b") == frozenset({"a", "b"})

    def test_tuple(self):
        assert parse_classifier_key(("a", "b")) == frozenset({"a", "b"})

    def test_frozenset_passthrough(self):
        key = frozenset({"x", "y"})
        assert parse_classifier_key(key) == key

    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            parse_classifier_key(())


class TestTableCost:
    def test_lookup_and_default(self):
        cost = TableCost({"a": 2.0})
        assert cost.cost(frozenset("a")) == 2.0
        assert cost.cost(frozenset("b")) == math.inf

    def test_finite_default(self):
        cost = TableCost({"a": 2.0}, default=5.0)
        assert cost.cost(frozenset("b")) == 5.0

    def test_rejects_negative_weight(self):
        with pytest.raises(InvalidInstanceError):
            TableCost({"a": -1})

    def test_contains_and_len(self):
        cost = TableCost({"a": 1, "a b": 2})
        assert frozenset("a") in cost
        assert frozenset("c") not in cost
        assert len(cost) == 2

    def test_total(self):
        cost = TableCost({"a": 1, "b": 2})
        assert cost.total([frozenset("a"), frozenset("b")]) == 3.0

    def test_total_with_missing_is_inf(self):
        cost = TableCost({"a": 1})
        assert cost.total([frozenset("a"), frozenset("z")]) == math.inf

    def test_copy_is_independent(self):
        cost = TableCost({"a": 1})
        clone = cost.copy()
        assert clone.cost(frozenset("a")) == 1.0
        assert clone is not cost

    def test_is_finite(self):
        cost = TableCost({"a": 1})
        assert cost.is_finite(frozenset("a"))
        assert not cost.is_finite(frozenset("b"))


class TestUniformCost:
    def test_constant(self):
        cost = UniformCost(3.0)
        assert cost.cost(frozenset("abc")) == 3.0

    def test_length_cap(self):
        cost = UniformCost(1.0, max_length=2)
        assert cost.cost(frozenset("ab")) == 1.0
        assert cost.cost(frozenset("abc")) == math.inf

    def test_invalid_cap(self):
        with pytest.raises(InvalidInstanceError):
            UniformCost(1.0, max_length=0)


class TestCallableCost:
    def test_wraps_function(self):
        cost = CallableCost(lambda clf: float(len(clf)))
        assert cost.cost(frozenset("ab")) == 2.0

    def test_propagates_inf(self):
        cost = CallableCost(lambda clf: math.inf)
        assert cost.cost(frozenset("a")) == math.inf

    def test_validates_output(self):
        cost = CallableCost(lambda clf: -1.0)
        with pytest.raises(InvalidInstanceError):
            cost.cost(frozenset("a"))


class TestHashCost:
    @given(CLF)
    @settings(max_examples=50)
    def test_in_range(self, clf):
        cost = HashCost(1, 50, seed=3)
        assert 1 <= cost.cost(clf) <= 50

    @given(CLF)
    @settings(max_examples=30)
    def test_deterministic(self, clf):
        assert HashCost(1, 50, seed=3).cost(clf) == HashCost(1, 50, seed=3).cost(clf)

    def test_seed_changes_draws(self):
        clfs = [frozenset((f"p{i}",)) for i in range(40)]
        a = [HashCost(1, 50, seed=0).cost(c) for c in clfs]
        b = [HashCost(1, 50, seed=1).cost(c) for c in clfs]
        assert a != b

    def test_length_cap(self):
        cost = HashCost(1, 50, seed=0, max_length=2)
        assert cost.cost(frozenset("abc")) == math.inf

    def test_invalid_range(self):
        with pytest.raises(InvalidInstanceError):
            HashCost(5, 2)


class TestZeroedCost:
    def test_free_subset_costs_zero(self):
        base = UniformCost(9.0)
        cost = ZeroedCost(base, ["known1", "known2"])
        assert cost.cost(frozenset({"known1"})) == 0.0
        assert cost.cost(frozenset({"known1", "known2"})) == 0.0

    def test_mixed_classifier_keeps_base_cost(self):
        base = UniformCost(9.0)
        cost = ZeroedCost(base, ["known"])
        assert cost.cost(frozenset({"known", "unknown"})) == 9.0


class TestLengthCappedCost:
    def test_caps(self):
        cost = LengthCappedCost(UniformCost(1.0), max_length=2)
        assert cost.cost(frozenset("ab")) == 1.0
        assert cost.cost(frozenset("abc")) == math.inf

    def test_invalid(self):
        with pytest.raises(InvalidInstanceError):
            LengthCappedCost(UniformCost(1.0), max_length=0)


class TestOverlayCost:
    def test_select_zeroes(self):
        overlay = OverlayCost(UniformCost(4.0))
        clf = frozenset("ab")
        overlay.select(clf)
        assert overlay.cost(clf) == 0.0

    def test_remove_prices_infinite(self):
        overlay = OverlayCost(UniformCost(4.0))
        clf = frozenset("ab")
        overlay.remove(clf)
        assert overlay.cost(clf) == math.inf
        assert overlay.is_removed(clf)

    def test_untouched_passthrough(self):
        overlay = OverlayCost(UniformCost(4.0))
        assert overlay.cost(frozenset("z")) == 4.0

    def test_initial_overrides(self):
        overlay = OverlayCost(UniformCost(4.0), {frozenset("a"): 1.0})
        assert overlay.cost(frozenset("a")) == 1.0


class TestSubAdditiveHashCost:
    def make(self, **kwargs):
        bases = {"a": 10, "b": 20, "c": 40}
        return SubAdditiveHashCost(bases, low=1, high=63, seed=5, **kwargs)

    def test_singleton_pays_base(self):
        assert self.make().cost(frozenset("a")) == 10.0

    def test_unknown_property_unavailable(self):
        assert self.make().cost(frozenset("z")) == math.inf

    @given(st.frozensets(st.sampled_from("abc"), min_size=2, max_size=3))
    def test_in_range(self, clf):
        value = self.make().cost(clf)
        assert 1 <= value <= 63

    def test_deterministic(self):
        assert self.make().cost(frozenset("ab")) == self.make().cost(frozenset("ab"))

    def test_length_cap(self):
        assert self.make(max_length=1).cost(frozenset("ab")) == math.inf

    def test_conjunction_anchors_on_min_base(self):
        """With u_high <= 1 and no spill the conjunction never costs more
        than its cheapest part."""
        bases = {"a": 10, "b": 60}
        model = SubAdditiveHashCost(
            bases, low=1, high=63, u_low=0.5, u_high=1.0, spill=0.0, seed=1
        )
        assert model.cost(frozenset("ab")) <= 10

    def test_invalid_ranges(self):
        with pytest.raises(InvalidInstanceError):
            SubAdditiveHashCost({"a": 1}, low=5, high=1)
        with pytest.raises(InvalidInstanceError):
            SubAdditiveHashCost({"a": 1}, u_low=0, u_high=1)
        with pytest.raises(InvalidInstanceError):
            SubAdditiveHashCost({"a": 1}, spill=-0.1)
